"""Runtime security monitors and insertion-space denial (TPAD [25],
BISA [20]).

Two design-time mitigations from Table II:

* **Security monitors** — a shadow predictor recomputes a critical
  output; any runtime divergence (a Trojan payload firing, a fault)
  raises ``monitor_alarm``.  This is the concurrent-checking idea of
  TPAD, here instantiated by logic synthesis.
* **Built-in self-authentication (BISA)** — fill every unused placement
  site with interconnected test-able filler cells so a fabrication-time
  adversary finds no room to insert logic without breaking the filler
  self-test.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist, cone_extract
from ..physical import Placement


@dataclass
class MonitoredDesign:
    """Design plus shadow monitors on selected outputs."""

    netlist: Netlist
    monitored_outputs: List[str]
    alarm: str
    overhead_cells: int


def insert_monitors(netlist: Netlist,
                    outputs: Optional[Sequence[str]] = None
                    ) -> MonitoredDesign:
    """Shadow-and-compare monitors on the given outputs (default: all).

    The monitor cone is an independent copy of each output's logic; the
    alarm is the OR of all divergences.  Detects any Trojan payload (or
    fault) localized to one copy, at duplication-like cost for the
    monitored cones.
    """
    targets = list(outputs) if outputs else list(netlist.outputs)
    host = netlist.copy(netlist.name + "_mon")
    before = host.num_cells()
    divergences: List[str] = []
    for out in targets:
        cone = cone_extract(netlist, out)
        port_map = {inp: inp for inp in cone.inputs}
        rename = host.import_netlist(cone, f"mon_{out}_", port_map)
        divergences.append(
            host.add(GateType.XOR, [out, rename[out]], prefix="mx")
        )
    body = (divergences[0] if len(divergences) == 1
            else host.add(GateType.OR, divergences, prefix="ma"))
    host.add_gate("monitor_alarm", GateType.BUF, [body])
    host.add_output("monitor_alarm")
    return MonitoredDesign(
        netlist=host,
        monitored_outputs=targets,
        alarm="monitor_alarm",
        overhead_cells=host.num_cells() - before,
    )


# ----------------------------------------------------------------------
# BISA-style filler-cell insertion
# ----------------------------------------------------------------------

@dataclass
class BisaFill:
    """Occupied-die accounting after self-authenticating fill."""

    filler_cells: Dict[str, Tuple[int, int]]   # name -> site
    free_sites_before: int
    free_sites_after: int

    @property
    def fill_rate(self) -> float:
        if self.free_sites_before == 0:
            return 1.0
        return 1.0 - self.free_sites_after / self.free_sites_before


def bisa_fill(placement: Placement, fill_fraction: float = 1.0,
              seed: int = 0) -> BisaFill:
    """Fill empty placement sites with self-authenticating cells.

    ``fill_fraction < 1`` models imperfect fill (engineering-change
    headroom etc.) and is exactly what an attacker exploits.
    """
    rng = random.Random(seed)
    occupied = set(placement.positions.values())
    free = [
        (x, y)
        for x in range(placement.width)
        for y in range(placement.height)
        if (x, y) not in occupied
    ]
    count = int(len(free) * fill_fraction)
    chosen = rng.sample(free, count) if count < len(free) else list(free)
    fillers = {
        f"bisa{i}": site for i, site in enumerate(chosen)
    }
    return BisaFill(
        filler_cells=fillers,
        free_sites_before=len(free),
        free_sites_after=len(free) - len(chosen),
    )


def insertion_feasibility(placement: Placement, fill: BisaFill,
                          trojan_sites_needed: int,
                          window: int = 3,
                          seed: int = 0) -> bool:
    """Can an attacker find ``trojan_sites_needed`` free sites within any
    ``window`` x ``window`` region after the fill?

    A fabrication-time Trojan needs physically close free sites; full
    BISA fill makes this impossible.
    """
    occupied = set(placement.positions.values()) | set(
        fill.filler_cells.values())
    for x0 in range(max(1, placement.width - window + 1)):
        for y0 in range(max(1, placement.height - window + 1)):
            free = sum(
                1
                for x in range(x0, min(placement.width, x0 + window))
                for y in range(y0, min(placement.height, y0 + window))
                if (x, y) not in occupied
            )
            if free >= trojan_sites_needed:
                return True
    return False
