"""Path-delay fingerprinting for Trojan detection [35].

Timing-verification-stage scheme from Table II: characterize a golden
population's output path delays (under process variation), then flag
chips whose delay vector falls outside the population envelope.  A
fabrication-time Trojan necessarily loads some path, shifting its delay
beyond mere process noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..netlist import Netlist
from ..physical import output_path_delays


@dataclass
class DelayFingerprint:
    """Statistical envelope of a golden chip population."""

    output_order: List[str]
    mean: np.ndarray
    std: np.ndarray
    z_threshold: float = 4.0

    def z_scores(self, delays: np.ndarray) -> np.ndarray:
        """Per-output deviation from the golden population (in sigmas)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.std > 0,
                            (delays - self.mean) / self.std, 0.0)

    def is_outlier(self, delays: np.ndarray) -> bool:
        """Does any output exceed the z-score threshold?"""
        return bool(np.any(np.abs(self.z_scores(delays)) > self.z_threshold))


def golden_population_delays(netlist: Netlist, n_chips: int = 30,
                             delay_noise: float = 0.04,
                             seed: int = 0) -> np.ndarray:
    """Simulate a fab lot of golden chips; returns (n_chips, n_outputs)."""
    order = sorted(netlist.outputs)
    rows = [
        output_path_delays(netlist, delay_noise=delay_noise,
                           seed=seed + i).vector(order)
        for i in range(n_chips)
    ]
    return np.stack(rows)


def build_fingerprint(netlist: Netlist, n_chips: int = 30,
                      delay_noise: float = 0.04, seed: int = 0,
                      z_threshold: float = 4.0) -> DelayFingerprint:
    """Characterize the golden population envelope."""
    order = sorted(netlist.outputs)
    population = golden_population_delays(netlist, n_chips, delay_noise,
                                          seed)
    return DelayFingerprint(
        output_order=order,
        mean=population.mean(axis=0),
        std=population.std(axis=0) + 1e-9,
        z_threshold=z_threshold,
    )


def measure_chip(netlist: Netlist, delay_noise: float = 0.04,
                 seed: int = 0,
                 fingerprint: Optional[DelayFingerprint] = None
                 ) -> np.ndarray:
    """One chip's delay vector in the fingerprint's output order."""
    order = (fingerprint.output_order if fingerprint
             else sorted(netlist.outputs))
    return output_path_delays(netlist, delay_noise=delay_noise,
                              seed=seed).vector(order)


def screen_population(fingerprint: DelayFingerprint,
                      golden_netlist: Netlist,
                      suspect_netlist: Netlist,
                      n_chips: int = 20,
                      delay_noise: float = 0.04,
                      seed: int = 1000) -> Tuple[float, float]:
    """Screen golden and suspect lots; returns (false-positive rate,
    detection rate) — the fingerprinting ROC point."""
    false_positives = 0
    for i in range(n_chips):
        delays = measure_chip(golden_netlist, delay_noise, seed + i,
                              fingerprint)
        if fingerprint.is_outlier(delays):
            false_positives += 1
    detections = 0
    for i in range(n_chips):
        delays = measure_chip(suspect_netlist, delay_noise,
                              seed + 5000 + i, fingerprint)
        if fingerprint.is_outlier(delays):
            detections += 1
    return false_positives / n_chips, detections / n_chips
