"""Gate-level Trojan insertion.

The adversary model of paper Sec. II-A.4: a malicious designer (or
compromised tool) adds a stealthy trigger — an AND over internal nets
at their *rare* polarities, so random functional tests essentially
never fire it — and a payload that corrupts or leaks once triggered.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist, random_stimulus, simulate


def signal_probabilities(netlist: Netlist, n_vectors: int = 2048,
                         seed: int = 0) -> Dict[str, float]:
    """Monte-Carlo probability of each net being 1 under random inputs."""
    rng = random.Random(seed)
    stim = random_stimulus(netlist.inputs, n_vectors, rng)
    values = simulate(netlist, stim, n_vectors)
    return {
        net: word.bit_count() / n_vectors
        for net, word in values.items()
    }


def rare_nodes(netlist: Netlist, threshold: float = 0.2,
               n_vectors: int = 2048, seed: int = 0
               ) -> List[Tuple[str, int, float]]:
    """Nets with a rare polarity: (net, rare value, rareness prob).

    A net counts as rare if P(net = v) <= threshold for v in {0, 1}.
    Sorted rarest first.  These are both the attacker's favourite
    trigger inputs and MERO's coverage targets.
    """
    probs = signal_probabilities(netlist, n_vectors, seed)
    rare: List[Tuple[str, int, float]] = []
    for net, p_one in probs.items():
        gate = netlist.gates[net]
        if gate.gate_type is GateType.INPUT or not gate.gate_type.is_combinational:
            continue
        if p_one <= threshold:
            rare.append((net, 1, p_one))
        elif 1.0 - p_one <= threshold:
            rare.append((net, 0, 1.0 - p_one))
    rare.sort(key=lambda item: item[2])
    return rare


@dataclass
class TrojanInstance:
    """An inserted Trojan: where it listens, what it corrupts."""

    netlist: Netlist                      # the compromised design
    trigger_inputs: List[Tuple[str, int]]  # (net, activating value)
    trigger_net: str
    victim_net: str
    trigger_probability: float            # estimated activation prob

    def is_triggered(self, values: Mapping[str, int], pattern: int = 0
                     ) -> bool:
        """Did the trigger fire in simulated ``values`` (one pattern)?"""
        return bool((values[self.trigger_net] >> pattern) & 1)


def _conjunction_satisfiable(netlist: Netlist,
                             terms: Sequence[Tuple[str, int, float]]
                             ) -> bool:
    """SAT check that all nets can take their rare values at once."""
    from ..formal import solve_circuit

    require = {net: value for net, value, _ in terms}
    return solve_circuit(netlist, {}, require) is not None


def insert_rare_trigger_trojan(netlist: Netlist,
                               trigger_width: int = 4,
                               rare_threshold: float = 0.25,
                               min_rareness: float = 0.01,
                               seed: int = 0,
                               victim: Optional[str] = None
                               ) -> TrojanInstance:
    """Insert an AND-of-rare-values trigger with an XOR payload.

    The trigger fires only when all ``trigger_width`` chosen nets sit at
    their rare polarity simultaneously; the payload flips ``victim``
    (default: a random internal net feeding an output cone).  Trigger
    nets are drawn from rareness range [``min_rareness``,
    ``rare_threshold``]: a real attacker avoids unreachable (p = 0)
    conditions, which would make the Trojan dead logic.
    """
    rng = random.Random(seed)
    rare = [
        item for item in rare_nodes(netlist, rare_threshold, seed=seed)
        if item[2] >= min_rareness
    ]
    if len(rare) < trigger_width:
        raise ValueError(
            f"only {len(rare)} rare nodes in [{min_rareness}, "
            f"{rare_threshold}]; lower trigger_width"
        )
    # A careful attacker verifies the conjunction is actually
    # satisfiable (rare values can be logically incompatible): try a
    # few random selections and SAT-check each.
    pool = rare[:max(trigger_width * 4, trigger_width)]
    chosen: List[Tuple[str, int, float]] = []
    for attempt in range(60):
        if attempt == 20:
            pool = rare  # widen the pool if the rarest nodes conflict
        candidate = rng.sample(pool, trigger_width)
        if _conjunction_satisfiable(netlist, candidate):
            chosen = candidate
            break
    if not chosen:
        raise ValueError("no satisfiable rare conjunction found")
    compromised = netlist.copy(netlist.name + "_troj")
    trigger_terms: List[str] = []
    probability = 1.0
    trigger_inputs: List[Tuple[str, int]] = []
    for net, value, prob in chosen:
        trigger_inputs.append((net, value))
        probability *= max(prob, 1e-9)
        if value == 1:
            trigger_terms.append(net)
        else:
            trigger_terms.append(
                compromised.add(GateType.NOT, [net], prefix="tj_inv")
            )
    trigger = compromised.add(GateType.AND, trigger_terms, prefix="tj_trig")

    # The victim must lie outside the trigger's fanin cone (otherwise
    # rewiring its consumers through the payload creates a cycle) and
    # inside some output cone (otherwise the payload is dead logic).
    trigger_cone = compromised.transitive_fanin(
        [net for net, _ in trigger_inputs])
    output_cones = compromised.transitive_fanin(compromised.outputs)
    candidates = [
        g.name for g in compromised.gates.values()
        if g.gate_type.is_combinational and not g.gate_type.is_source
        and g.name not in compromised.outputs
        and not g.name.startswith("tj_")
        and g.name not in trigger_cone
        and g.name in output_cones
    ]
    if victim is None and not candidates:
        raise ValueError("no cycle-free victim net available")
    victim_net = victim or rng.choice(candidates)
    if victim_net in trigger_cone:
        raise ValueError(f"victim {victim_net!r} lies in the trigger cone")
    payload = compromised.add(GateType.XOR, [victim_net, trigger],
                              prefix="tj_pay")
    compromised.rewire_consumers(victim_net, payload, keep_outputs=False)
    g = compromised.gate(payload)
    g.fanins = [victim_net if fi == payload else fi for fi in g.fanins]
    compromised.invalidate()
    return TrojanInstance(
        netlist=compromised,
        trigger_inputs=trigger_inputs,
        trigger_net=trigger,
        victim_net=victim_net,
        trigger_probability=probability,
    )


def trigger_activations(trojan: TrojanInstance,
                        stimuli_word: Mapping[str, int],
                        width: int) -> int:
    """How many of the packed patterns fire the trigger."""
    values = simulate(trojan.netlist, stimuli_word, width)
    return values[trojan.trigger_net].bit_count()
