"""Parametric (side-channel) Trojan detection: IDDQ and RO networks.

Table II's post-silicon parametric tests: [60] measures quiescent
supply current per power pad and flags regional anomalies; [28] embeds
a ring-oscillator network whose frequencies sag when parasitic logic
loads the local supply.  Both compare against a golden population, so
process variation sets the detection floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..netlist import Netlist
from ..netlist.metrics import DEFAULT_COSTS
from ..physical import Placement


def regional_leakage(netlist: Netlist, placement: Placement,
                     pads: int = 4,
                     variation: float = 0.05,
                     seed: int = 0) -> np.ndarray:
    """Per-pad quiescent current: leakage of cells nearest each pad.

    Pads sit at the die corners (pads=4) or edge midpoints as well
    (pads=8); each cell's leakage (with process variation) is drawn to
    its nearest pad — the multiple-supply-pad IDDQ model of [60].
    """
    rng = np.random.default_rng(seed)
    w, h = placement.width, placement.height
    corners = [(0, 0), (w - 1, 0), (0, h - 1), (w - 1, h - 1)]
    edges = [(w // 2, 0), (w // 2, h - 1), (0, h // 2), (w - 1, h // 2)]
    pad_positions = (corners + edges)[:pads]
    currents = np.zeros(pads)
    for cell, (x, y) in placement.positions.items():
        g = netlist.gates.get(cell)
        if g is None:
            continue
        base = DEFAULT_COSTS[g.gate_type].leakage
        leak = base * max(0.0, 1.0 + rng.normal(0.0, variation))
        distances = [abs(x - px) + abs(y - py) for px, py in pad_positions]
        currents[int(np.argmin(distances))] += leak
    return currents


@dataclass
class IddqDetector:
    """Golden-population envelope over per-pad current vectors."""

    mean: np.ndarray
    std: np.ndarray
    z_threshold: float = 4.0

    def is_anomalous(self, currents: np.ndarray) -> bool:
        """Does any pad current exceed the z-score threshold?"""
        z = np.abs((currents - self.mean) / (self.std + 1e-9))
        return bool(np.any(z > self.z_threshold))


def calibrate_iddq(netlist: Netlist, placement: Placement,
                   n_chips: int = 30, pads: int = 4,
                   variation: float = 0.05, seed: int = 0,
                   z_threshold: float = 4.0) -> IddqDetector:
    """Characterize the golden population's per-pad current envelope."""
    rows = np.stack([
        regional_leakage(netlist, placement, pads, variation, seed + i)
        for i in range(n_chips)
    ])
    return IddqDetector(rows.mean(axis=0), rows.std(axis=0) + 1e-9,
                        z_threshold)


def screen_iddq(detector: IddqDetector, netlist: Netlist,
                placement: Placement, n_chips: int = 20, pads: int = 4,
                variation: float = 0.05, seed: int = 500) -> float:
    """Fraction of measured chips flagged anomalous."""
    flagged = 0
    for i in range(n_chips):
        currents = regional_leakage(netlist, placement, pads, variation,
                                    seed + i)
        if detector.is_anomalous(currents):
            flagged += 1
    return flagged / n_chips


# ----------------------------------------------------------------------
# Ring-oscillator network [28]
# ----------------------------------------------------------------------

@dataclass
class RoNetwork:
    """Grid of on-die ring oscillators sensing local supply droop."""

    positions: List[Tuple[float, float]]
    base_frequency: float = 500.0      # MHz
    droop_coefficient: float = 3.0     # MHz per leakage unit nearby
    sensing_radius: float = 6.0

    def frequencies(self, netlist: Netlist, placement: Placement,
                    extra_cells: Optional[Sequence[str]] = None,
                    noise: float = 0.15, seed: int = 0) -> np.ndarray:
        """RO frequencies given the local activity around each RO.

        ``extra_cells`` names cells (e.g. Trojan gates) whose load
        counts double — dormant parasitics still draw leakage.  The
        noise default models frequencies averaged over repeated
        measurements, the usual practice for RO-based detection.
        """
        rng = np.random.default_rng(seed)
        extra = set(extra_cells or ())
        freqs = []
        for (rx, ry) in self.positions:
            local = 0.0
            for cell, (x, y) in placement.positions.items():
                if abs(x - rx) + abs(y - ry) > self.sensing_radius:
                    continue
                g = netlist.gates.get(cell)
                if g is None:
                    continue
                weight = 2.0 if cell in extra else 1.0
                local += weight * DEFAULT_COSTS[g.gate_type].leakage
            freqs.append(self.base_frequency
                         - self.droop_coefficient * local * 0.1
                         + rng.normal(0.0, noise))
        return np.array(freqs)


def build_ro_network(placement: Placement, grid: int = 3) -> RoNetwork:
    """Place an evenly spaced grid x grid RO network on the die."""
    xs = np.linspace(0, placement.width - 1, grid)
    ys = np.linspace(0, placement.height - 1, grid)
    return RoNetwork([(float(x), float(y)) for x in xs for y in ys])


def ro_detection(network: RoNetwork, netlist: Netlist,
                 placement: Placement,
                 trojan_netlist: Netlist,
                 trojan_placement: Placement,
                 trojan_cells: Sequence[str],
                 n_golden: int = 20, z_threshold: float = 4.0,
                 seed: int = 0) -> Tuple[bool, float]:
    """Compare a suspect chip's RO vector to the golden population.

    Returns (detected, max |z| over ROs).
    """
    golden = np.stack([
        network.frequencies(netlist, placement, seed=seed + i)
        for i in range(n_golden)
    ])
    mean, std = golden.mean(axis=0), golden.std(axis=0) + 1e-9
    suspect = network.frequencies(trojan_netlist, trojan_placement,
                                  extra_cells=trojan_cells,
                                  seed=seed + 999)
    z = np.abs((suspect - mean) / std)
    return bool(np.any(z > z_threshold)), float(z.max())
