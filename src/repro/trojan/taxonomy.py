"""Hardware-Trojan taxonomy (paper Sec. II-A.4, ref [13]).

The paper classifies Trojans by (i) abstraction level, (ii) intent
(leak, degrade, disrupt), and (iii) activation (always-on, internally
or externally triggered).  The dataclasses here carry that metadata so
campaigns and reports can slice results the way the paper's Table I
discusses roles for EDA.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class AbstractionLevel(enum.Enum):
    """Where in the design hierarchy the Trojan lives."""

    SYSTEM = "system"
    RTL = "rtl"
    GATE = "gate"
    PHYSICAL = "physical"


class TrojanIntent(enum.Enum):
    """What the Trojan is built to do."""

    LEAK_INFORMATION = "leak"
    DEGRADE_PERFORMANCE = "degrade"
    DENIAL_OF_SERVICE = "disrupt"


class Activation(enum.Enum):
    """How the Trojan turns on."""

    ALWAYS_ON = "always_on"
    INTERNAL_TRIGGER = "internal"
    EXTERNAL_TRIGGER = "external"


@dataclass(frozen=True)
class TrojanClass:
    """One point in the Trojan design space."""

    name: str
    level: AbstractionLevel
    intent: TrojanIntent
    activation: Activation
    insertion_point: str        # e.g. "design", "fabrication"
    description: str = ""


#: Representative catalogue used in reports and examples.
CATALOGUE = (
    TrojanClass(
        "rare-trigger-flip", AbstractionLevel.GATE,
        TrojanIntent.DENIAL_OF_SERVICE, Activation.INTERNAL_TRIGGER,
        "design",
        "AND of rare internal values flips a payload net "
        "(the MERO benchmark Trojan).",
    ),
    TrojanClass(
        "key-leaker", AbstractionLevel.GATE,
        TrojanIntent.LEAK_INFORMATION, Activation.INTERNAL_TRIGGER,
        "design",
        "Muxes a key bit onto an observable output under a trigger.",
    ),
    TrojanClass(
        "delay-parasite", AbstractionLevel.PHYSICAL,
        TrojanIntent.DEGRADE_PERFORMANCE, Activation.ALWAYS_ON,
        "fabrication",
        "Extra load on a critical net; caught by delay fingerprinting.",
    ),
    TrojanClass(
        "leakage-parasite", AbstractionLevel.PHYSICAL,
        TrojanIntent.LEAK_INFORMATION, Activation.ALWAYS_ON,
        "fabrication",
        "Dormant logic raising regional IDDQ; caught by supply-pad "
        "current analysis.",
    ),
)
