"""Hardware Trojans: taxonomy, insertion, MERO, fingerprinting, monitors."""

from .taxonomy import (
    AbstractionLevel,
    Activation,
    CATALOGUE,
    TrojanClass,
    TrojanIntent,
)
from .insert import (
    TrojanInstance,
    insert_rare_trigger_trojan,
    rare_nodes,
    signal_probabilities,
    trigger_activations,
)
from .mero import (
    DetectionOutcome,
    MeroTestSet,
    apply_test_set,
    detection_rate,
    generate_mero_tests,
    pair_trigger_coverage,
    random_test_set,
)
from .fingerprint import (
    DelayFingerprint,
    build_fingerprint,
    golden_population_delays,
    measure_chip,
    screen_population,
)
from .sidechannel import (
    IddqDetector,
    RoNetwork,
    build_ro_network,
    calibrate_iddq,
    regional_leakage,
    ro_detection,
    screen_iddq,
)
from .monitors import (
    BisaFill,
    MonitoredDesign,
    bisa_fill,
    insert_monitors,
    insertion_feasibility,
)

__all__ = [
    "AbstractionLevel", "Activation", "CATALOGUE", "TrojanClass",
    "TrojanIntent",
    "TrojanInstance", "insert_rare_trigger_trojan", "rare_nodes",
    "signal_probabilities", "trigger_activations",
    "DetectionOutcome", "MeroTestSet", "apply_test_set", "detection_rate",
    "generate_mero_tests", "pair_trigger_coverage", "random_test_set",
    "DelayFingerprint", "build_fingerprint", "golden_population_delays",
    "measure_chip", "screen_population",
    "IddqDetector", "RoNetwork", "build_ro_network", "calibrate_iddq",
    "regional_leakage", "ro_detection", "screen_iddq",
    "BisaFill", "MonitoredDesign", "bisa_fill", "insert_monitors",
    "insertion_feasibility",
]
