"""MERO: statistical N-detect test generation for Trojan detection [40].

Random functional tests almost never satisfy a rare-trigger Trojan's
full conjunction.  MERO's observation: if every *individual* rare node
is driven to its rare value at least N times across the test set, the
joint probability that some test also fires a (small) conjunction of
them rises sharply — without knowing the actual trigger.

Algorithm (following Chakraborty et al., CHES'09): start from random
patterns, then hill-climb over input bits, keeping flips that push more
under-quota rare nodes to their rare values.  Coverage is scored two
ways: full-Trojan detection (:func:`detection_rate`) and pairwise
rare-combination coverage (:func:`pair_trigger_coverage`), the
fine-grained metric where the MERO-vs-random gap is sharpest.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist import Netlist, get_compiled, pack_patterns, simulate
from .insert import TrojanInstance, rare_nodes


@dataclass
class MeroTestSet:
    """Generated vectors plus achievement statistics."""

    vectors: List[Dict[str, int]]
    rare_targets: List[Tuple[str, int, float]]
    detect_counts: Dict[Tuple[str, int], int]
    n_detect: int

    @property
    def quota_fraction(self) -> float:
        """Fraction of rare targets hitting the N-detect quota."""
        if not self.rare_targets:
            return 1.0
        met = sum(
            1 for net, value, _ in self.rare_targets
            if self.detect_counts.get((net, value), 0) >= self.n_detect
        )
        return met / len(self.rare_targets)


def generate_mero_tests(netlist: Netlist,
                        n_detect: int = 10,
                        n_initial: int = 300,
                        rare_threshold: float = 0.15,
                        min_rareness: float = 0.005,
                        seed: int = 0) -> MeroTestSet:
    """Generate an N-detect test set for the rare nodes of ``netlist``.

    Targets are nets with rare-value probability in
    [``min_rareness``, ``rare_threshold``] — exactly the band an
    attacker uses for reachable-but-stealthy triggers.
    """
    rng = random.Random(seed)
    targets = [
        t for t in rare_nodes(netlist, rare_threshold, seed=seed)
        if t[2] >= min_rareness
    ]
    inputs = netlist.inputs
    compiled = get_compiled(netlist)
    target_indices = [
        (compiled.index[net], net, rare_value)
        for net, rare_value, _ in targets
    ]
    detect_counts: Dict[Tuple[str, int], int] = {}
    kept_vectors: List[Dict[str, int]] = []

    def rare_hits(vector: Mapping[str, int]) -> Set[Tuple[str, int]]:
        values = simulate(netlist, vector)
        return {
            (net, rare_value) for net, rare_value, _ in targets
            if values[net] == rare_value
        }

    def flip_batch_hits(vector: Dict[str, int],
                        flip_bits: Sequence[str],
                        ) -> List[Set[Tuple[str, int]]]:
        """Hit set of every one-bit-flip neighbor in one packed pass."""
        neighbors = []
        for bit in flip_bits:
            neighbor = dict(vector)
            neighbor[bit] ^= 1
            neighbors.append(neighbor)
        width = len(neighbors)
        stimulus = pack_patterns(neighbors, compiled.input_names)
        words = compiled.eval_words(stimulus, width)
        full = (1 << width) - 1
        hit_sets: List[Set[Tuple[str, int]]] = [set() for _ in neighbors]
        for index, net, rare_value in target_indices:
            word = words[index]
            if not rare_value:
                word = ~word & full
            while word:
                low = word & -word
                hit_sets[low.bit_length() - 1].add((net, rare_value))
                word ^= low
        return hit_sets

    def quota_gain(hits: Set[Tuple[str, int]]) -> int:
        return sum(
            1 for key in hits if detect_counts.get(key, 0) < n_detect
        )

    for _ in range(n_initial):
        vector = {name: rng.randint(0, 1) for name in inputs}
        hits = rare_hits(vector)
        gain = quota_gain(hits)
        improved = True
        while improved:
            improved = False
            # One packed evaluation scores every remaining single-bit
            # neighbor; on acceptance the later neighbors are stale
            # (they were flipped off the pre-acceptance vector), so the
            # walk resumes from the next bit with a fresh batch.  The
            # accept/reject decisions are exactly the serial
            # flip-evaluate-revert loop's.
            order = rng.sample(inputs, len(inputs))
            pos = 0
            while pos < len(order):
                batch = order[pos:]
                hit_sets = flip_batch_hits(vector, batch)
                accepted = None
                for k, new_hits in enumerate(hit_sets):
                    new_gain = quota_gain(new_hits)
                    if new_gain > gain:
                        accepted = k
                        gain, hits = new_gain, new_hits
                        break
                if accepted is None:
                    break
                vector[batch[accepted]] ^= 1
                improved = True
                pos += accepted + 1
        if gain > 0:
            kept_vectors.append(dict(vector))
            for key in hits:
                detect_counts[key] = detect_counts.get(key, 0) + 1
    return MeroTestSet(kept_vectors, targets, detect_counts, n_detect)


@dataclass
class DetectionOutcome:
    """Did a test set expose a specific Trojan?"""

    triggered: bool
    triggering_vector: Optional[Dict[str, int]]
    vectors_applied: int


def apply_test_set(trojan: TrojanInstance,
                   vectors: Sequence[Mapping[str, int]]) -> DetectionOutcome:
    """Run vectors against a compromised design; stop at first trigger.

    All vectors are simulated in one bit-parallel pass; the first set
    bit of the trigger net's packed word is the first firing vector, so
    the early-exit semantics of the sequential loop are preserved.
    """
    if not vectors:
        return DetectionOutcome(False, None, 0)
    compiled = get_compiled(trojan.netlist)
    width = len(vectors)
    stimulus = pack_patterns(list(vectors), compiled.input_names)
    word = compiled.eval_words(stimulus, width)[
        compiled.index[trojan.trigger_net]]
    if word:
        index = (word & -word).bit_length() - 1  # lowest set bit
        return DetectionOutcome(True, dict(vectors[index]), index + 1)
    return DetectionOutcome(False, None, len(vectors))


def random_test_set(netlist: Netlist, count: int,
                    seed: int = 0) -> List[Dict[str, int]]:
    """Baseline: plain random vectors of the same budget."""
    rng = random.Random(seed)
    return [
        {name: rng.randint(0, 1) for name in netlist.inputs}
        for _ in range(count)
    ]


def detection_rate(netlist: Netlist, vectors: Sequence[Mapping[str, int]],
                   n_trojans: int = 20, trigger_width: int = 2,
                   rare_threshold: float = 0.15,
                   min_rareness: float = 0.005,
                   seed: int = 0) -> float:
    """Fraction of randomly sampled Trojans a test set exposes."""
    from .insert import insert_rare_trigger_trojan

    detected = 0
    built = 0
    for i in range(n_trojans):
        try:
            trojan = insert_rare_trigger_trojan(
                netlist, trigger_width=trigger_width,
                rare_threshold=rare_threshold,
                min_rareness=min_rareness, seed=seed + i)
        except ValueError:
            continue
        built += 1
        if apply_test_set(trojan, vectors).triggered:
            detected += 1
    return detected / built if built else 0.0


def pair_trigger_coverage(netlist: Netlist,
                          vectors: Sequence[Mapping[str, int]],
                          rare_threshold: float = 0.15,
                          min_rareness: float = 0.005,
                          max_pairs: int = 400,
                          seed: int = 0) -> float:
    """Fraction of rare-node *pairs* co-activated by some vector.

    Every width-2 rare conjunction is a potential trigger; this counts
    how many the test set would fire — the fine-grained MERO quality
    metric (higher = fewer places for a Trojan to hide).
    """
    rng = random.Random(seed)
    targets = [
        t for t in rare_nodes(netlist, rare_threshold, seed=seed)
        if t[2] >= min_rareness
    ]
    pairs = list(itertools.combinations(range(len(targets)), 2))
    if len(pairs) > max_pairs:
        pairs = rng.sample(pairs, max_pairs)
    if not pairs:
        return 1.0
    # One packed simulation covers the whole vector set; a pair is
    # covered iff some bit position holds both rare values at once.
    compiled = get_compiled(netlist)
    width = len(vectors)
    mask = (1 << width) - 1
    stimulus = pack_patterns(list(vectors), compiled.input_names)
    words = compiled.eval_words(stimulus, width)
    rare_word = [
        words[compiled.index[net]] if value else
        ~words[compiled.index[net]] & mask
        for net, value, _ in targets
    ]
    covered = 0
    for ia, ib in pairs:
        if rare_word[ia] & rare_word[ib]:
            covered += 1
    return covered / len(pairs)
