"""Technology mapping: rewrite a netlist onto a target cell library.

Two stages: decompose variadic gates into 2-input trees, then rewrite
any gate function missing from the library into available primitives
(classical NAND/INV refactorings).
"""

from __future__ import annotations

from typing import Dict, List

from ..netlist import Gate, GateType, Netlist
from .library import CellLibrary, standard_library


def decompose_variadic(netlist: Netlist, balanced: bool = True) -> int:
    """Split gates with more than two fanins into 2-input trees.

    Inverting types become a base-function tree plus a final inversion
    folded into the root gate (NAND(a,b,c) -> NAND(AND(a,b), c)).
    Returns the number of gates decomposed.
    """
    rewritten = 0
    for net in list(netlist.topological_order()):
        g = netlist.gates.get(net)
        if g is None or len(g.fanins) <= 2:
            continue
        if g.gate_type is GateType.MUX:
            continue
        base = g.gate_type.base
        operands = list(g.fanins)
        if balanced:
            while len(operands) > 2:
                nxt: List[str] = []
                for k in range(0, len(operands) - 1, 2):
                    nxt.append(netlist.add(
                        base, [operands[k], operands[k + 1]], prefix="dc"))
                if len(operands) % 2:
                    nxt.append(operands[-1])
                operands = nxt
        else:
            while len(operands) > 2:
                first = netlist.add(base, operands[:2], prefix="dc")
                operands = [first] + operands[2:]
        # The root keeps the original (possibly inverting) type and name.
        g.fanins = operands
        netlist.invalidate()
        rewritten += 1
    return rewritten


def _rewrite_gate(netlist: Netlist, g: Gate, lib: CellLibrary) -> None:
    """Replace one unsupported 1-3 input gate with supported primitives."""
    t = g.gate_type
    has = lib.supports

    def fresh(gate_type: GateType, fanins: List[str]) -> str:
        return netlist.add(gate_type, fanins, prefix="tm")

    def inv(x: str) -> str:
        if has(GateType.NOT, 1):
            return fresh(GateType.NOT, [x])
        return fresh(GateType.NAND, [x, x])

    def nand(a: str, b: str) -> str:
        if has(GateType.NAND, 2):
            return fresh(GateType.NAND, [a, b])
        return inv(fresh(GateType.AND, [a, b]))

    def and2(a: str, b: str) -> str:
        if has(GateType.AND, 2):
            return fresh(GateType.AND, [a, b])
        return inv(nand(a, b))

    def or2(a: str, b: str) -> str:
        if has(GateType.OR, 2):
            return fresh(GateType.OR, [a, b])
        if has(GateType.NOR, 2):
            return inv(fresh(GateType.NOR, [a, b]))
        return nand(inv(a), inv(b))

    def xor2(a: str, b: str) -> str:
        if has(GateType.XOR, 2):
            return fresh(GateType.XOR, [a, b])
        if has(GateType.XNOR, 2):
            return inv(fresh(GateType.XNOR, [a, b]))
        t1 = nand(a, b)
        return nand(nand(a, t1), nand(b, t1))

    a = g.fanins[0]
    b = g.fanins[1] if len(g.fanins) > 1 else None
    if t is GateType.BUF:
        body = inv(inv(a))
    elif t is GateType.NOT:
        body = nand(a, a)
    elif t is GateType.AND:
        body = and2(a, b)
    elif t is GateType.NAND:
        body = nand(a, b)
    elif t is GateType.OR:
        body = or2(a, b)
    elif t is GateType.NOR:
        body = inv(or2(a, b))
    elif t is GateType.XOR:
        body = xor2(a, b)
    elif t is GateType.XNOR:
        body = inv(xor2(a, b))
    elif t is GateType.MUX:
        sel, d0, d1 = g.fanins
        body = nand(nand(inv(sel), d0), nand(sel, d1))
    else:
        raise ValueError(f"cannot map {t.name}")
    # Old gate becomes an alias of the new body, preserving its name.
    if not lib.supports(GateType.BUF, 1):
        raise ValueError("library must provide BUF for name preservation")
    g.gate_type = GateType.BUF
    g.fanins = [body]
    netlist.invalidate()


def map_to_library(netlist: Netlist,
                   library: CellLibrary = None) -> Dict[str, int]:
    """Map every gate onto cells of ``library`` (default: standard lib).

    Variadic gates are decomposed first.  Returns a summary of rewrite
    counts.  The result only contains gate functions available in the
    library (plus BUF aliases preserving net names).
    """
    lib = library or standard_library()
    decomposed = decompose_variadic(netlist)
    rewritten = 0
    for net in list(netlist.topological_order()):
        g = netlist.gates.get(net)
        if g is None:
            continue
        t = g.gate_type
        if not t.is_combinational or t.is_source:
            continue
        if lib.supports(t, len(g.fanins)):
            continue
        _rewrite_gate(netlist, g, lib)
        rewritten += 1
    netlist.sweep_dangling()
    return {"decomposed": decomposed, "rewritten": rewritten}


def to_nand_inv(netlist: Netlist) -> Dict[str, int]:
    """Convenience: canonical NAND2+INV mapping."""
    from .library import nand_inv_library
    return map_to_library(netlist, nand_inv_library())
