"""Associative-tree restructuring — the paper's Fig. 2 offender.

XOR (and AND/OR) are associative and commutative, so a timing-driven
synthesis tool is free to re-associate operand trees: it greedily
combines the *earliest-arriving* operands first so that late signals are
added near the root, minimizing the critical path.

For plain logic this is a pure win.  For a private circuit (ISW
masking), the order of XOR accumulation *is* the security property: if
the share products ``a3*b1, a3*b2, a3*b3`` arrive early and the random
bits ``r_ij`` arrive late (they come from an RNG), the greedy tree
computes ``a3*b1 ^ a3*b2 ^ a3*b3 = a3 & b`` as a physical net — and that
net's power consumption leaks the unmasked secret ``b``.  This module
implements exactly that rewrite; ``benchmarks/bench_fig2.py`` then shows
TVLA lighting up on the result.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..netlist import GateType, Netlist
from ..netlist.metrics import arrival_times, gate_delay

#: Associative/commutative gate families eligible for re-association.
_TREE_FAMILIES = {
    GateType.XOR: (GateType.XOR, GateType.XNOR),
    GateType.AND: (GateType.AND,),
    GateType.OR: (GateType.OR,),
}


@dataclass
class XorTree:
    """A maximal associative operand tree rooted at ``root``.

    ``leaves`` are the non-tree operand nets; ``inverted`` records the
    accumulated XNOR parity (only meaningful for the XOR family);
    ``internal`` lists absorbed tree-internal gate names.
    """

    root: str
    base: GateType
    leaves: List[str]
    inverted: bool
    internal: List[str]


def collect_trees(netlist: Netlist,
                  base: GateType = GateType.XOR) -> List[XorTree]:
    """Find maximal single-fanout operand trees of the given family."""
    family = _TREE_FAMILIES[base]
    fanout = netlist.fanout_map()
    in_family = {
        g.name for g in netlist.gates.values() if g.gate_type in family
    }
    # A gate is absorbed into its consumer's tree if its only consumer is
    # also in the family and it does not drive a primary output.
    absorbed: Set[str] = {
        name for name in in_family
        if len(fanout[name]) == 1 and fanout[name][0] in in_family
        and name not in netlist.outputs
    }
    roots = sorted(in_family - absorbed)
    trees: List[XorTree] = []
    for root in roots:
        leaves: List[str] = []
        internal: List[str] = []
        inverted = False
        stack = [root]
        while stack:
            name = stack.pop()
            g = netlist.gates[name]
            internal.append(name)
            if g.gate_type is GateType.XNOR:
                inverted = not inverted
            for fi in g.fanins:
                if fi in absorbed:
                    stack.append(fi)
                else:
                    leaves.append(fi)
        if len(leaves) > 2 or len(internal) > 1:
            trees.append(XorTree(root, base, leaves, inverted, internal))
    return trees


def _rebuild_greedy(netlist: Netlist, tree: XorTree,
                    arrivals: Dict[str, float]) -> str:
    """Huffman-style timing-driven rebuild: earliest operands merge first."""
    counter = itertools.count()
    heap: List[Tuple[float, int, str]] = [
        (arrivals.get(leaf, 0.0), next(counter), leaf)
        for leaf in tree.leaves
    ]
    heapq.heapify(heap)
    delay = gate_delay(tree.base, 2)
    while len(heap) > 1:
        t0, _, a = heapq.heappop(heap)
        t1, _, b = heapq.heappop(heap)
        net = netlist.add(tree.base, [a, b], prefix="ra")
        heapq.heappush(heap, (max(t0, t1) + delay, next(counter), net))
    return heap[0][2]


def _rebuild_balanced(netlist: Netlist, tree: XorTree) -> str:
    """Depth-balanced rebuild in original operand order."""
    nets = list(tree.leaves)
    while len(nets) > 1:
        nxt = []
        for k in range(0, len(nets) - 1, 2):
            nxt.append(netlist.add(tree.base, [nets[k], nets[k + 1]],
                                   prefix="rb"))
        if len(nets) % 2:
            nxt.append(nets[-1])
        nets = nxt
    return nets[0]


def _rebuild_chain(netlist: Netlist, tree: XorTree,
                   order: Sequence[str]) -> str:
    """Left-to-right chain in a caller-specified order (security-aware)."""
    acc = order[0]
    for leaf in order[1:]:
        acc = netlist.add(tree.base, [acc, leaf], prefix="rc")
    return acc


def _splice(netlist: Netlist, tree: XorTree, new_root: str) -> str:
    """Replace the old tree root with ``new_root`` (restoring parity).

    Returns the net that now carries the tree's function — the old root
    name if it was a primary output (kept as a buffer), else the new one.
    """
    if tree.inverted:
        new_root = netlist.add(GateType.NOT, [new_root], prefix="ra_inv")
    if tree.root in netlist.outputs:
        # Keep the output port name: turn the old root into a buffer.
        g = netlist.gates[tree.root]
        g.gate_type = GateType.BUF
        g.fanins = [new_root]
        netlist.invalidate()
        result = tree.root
    else:
        netlist.rewire_consumers(tree.root, new_root)
        result = new_root
    netlist.sweep_dangling()
    return result


def reassociate_for_timing(
    netlist: Netlist,
    base: GateType = GateType.XOR,
    input_arrivals: Optional[Mapping[str, float]] = None,
) -> int:
    """Timing-driven re-association of all maximal trees of ``base``.

    Returns the number of trees rebuilt.  ``input_arrivals`` models
    late-arriving primary inputs (e.g. RNG outputs).  This is the
    security-oblivious optimization of the paper's motivational example.
    """
    arrivals = arrival_times(netlist, input_arrivals=input_arrivals)
    rebuilt = 0
    rename: Dict[str, str] = {}
    for tree in collect_trees(netlist, base):
        tree.leaves = [_chase(rename, leaf) for leaf in tree.leaves]
        new_root = _rebuild_greedy(netlist, tree, arrivals)
        rename[tree.root] = _splice(netlist, tree, new_root)
        rebuilt += 1
    return rebuilt


def balance_trees(netlist: Netlist, base: GateType = GateType.XOR) -> int:
    """Depth-balanced re-association (area-neutral delay optimization)."""
    rebuilt = 0
    rename: Dict[str, str] = {}
    for tree in collect_trees(netlist, base):
        tree.leaves = [_chase(rename, leaf) for leaf in tree.leaves]
        new_root = _rebuild_balanced(netlist, tree)
        rename[tree.root] = _splice(netlist, tree, new_root)
        rebuilt += 1
    return rebuilt


def _chase(rename: Dict[str, str], net: str) -> str:
    """Follow root renames caused by earlier splices in the same run."""
    while net in rename and rename[net] != net:
        net = rename[net]
    return net
