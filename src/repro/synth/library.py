"""Standard-cell libraries for technology mapping.

A :class:`CellLibrary` states which gate functions (and fanin widths)
exist as physical cells.  Camouflaging (:mod:`repro.ip.camouflage`)
constrains synthesis to the functions covered by the obfuscated
primitives — exactly the "regular but constrained synthesis" the paper
describes in Sec. III-B — which is modeled here as mapping to a reduced
library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Optional, Tuple

from ..netlist import GateType


@dataclass(frozen=True)
class Cell:
    """One library cell: a gate function at a specific fanin count."""

    name: str
    gate_type: GateType
    fanin: int
    area: float
    delay: float


class CellLibrary:
    """A set of available cells, queried by (gate_type, fanin)."""

    def __init__(self, name: str, cells: Iterable[Cell]) -> None:
        self.name = name
        self.cells: Dict[Tuple[GateType, int], Cell] = {}
        for cell in cells:
            self.cells[(cell.gate_type, cell.fanin)] = cell

    def supports(self, gate_type: GateType, fanin: int) -> bool:
        """Is there a cell implementing this function at this arity?"""
        if gate_type in (GateType.INPUT, GateType.CONST0, GateType.CONST1):
            return True
        return (gate_type, fanin) in self.cells

    def cell_for(self, gate_type: GateType, fanin: int) -> Optional[Cell]:
        """The implementing cell, or None when unsupported."""
        return self.cells.get((gate_type, fanin))

    @property
    def gate_types(self) -> FrozenSet[GateType]:
        return frozenset(t for t, _ in self.cells)

    def __repr__(self) -> str:
        return f"CellLibrary({self.name!r}, {len(self.cells)} cells)"


def standard_library() -> CellLibrary:
    """A conventional 2-input standard-cell library plus DFF and MUX."""
    return CellLibrary("std", [
        Cell("BUF", GateType.BUF, 1, 1.0, 35.0),
        Cell("INV", GateType.NOT, 1, 0.7, 20.0),
        Cell("AND2", GateType.AND, 2, 1.3, 45.0),
        Cell("NAND2", GateType.NAND, 2, 1.0, 30.0),
        Cell("OR2", GateType.OR, 2, 1.3, 50.0),
        Cell("NOR2", GateType.NOR, 2, 1.0, 35.0),
        Cell("XOR2", GateType.XOR, 2, 2.2, 65.0),
        Cell("XNOR2", GateType.XNOR, 2, 2.2, 65.0),
        Cell("MUX2", GateType.MUX, 3, 2.5, 60.0),
        Cell("DFF", GateType.DFF, 1, 4.5, 90.0),
    ])


def nand_inv_library() -> CellLibrary:
    """The minimal NAND2+INV library (universal)."""
    return CellLibrary("nand_inv", [
        Cell("INV", GateType.NOT, 1, 0.7, 20.0),
        Cell("NAND2", GateType.NAND, 2, 1.0, 30.0),
        Cell("BUF", GateType.BUF, 1, 1.0, 35.0),
        Cell("DFF", GateType.DFF, 1, 4.5, 90.0),
    ])


def camouflage_library() -> CellLibrary:
    """Cells realizable by the multi-functional camouflaged primitive.

    The camouflaged cell of :mod:`repro.ip.camouflage` can implement
    NAND/NOR/XNOR (looking identical under imaging), so constrained
    synthesis may use only those plus inverters and buffers.
    """
    return CellLibrary("camo", [
        Cell("INV", GateType.NOT, 1, 0.7, 20.0),
        Cell("BUF", GateType.BUF, 1, 1.0, 35.0),
        Cell("CAMO_NAND", GateType.NAND, 2, 4.0, 80.0),
        Cell("CAMO_NOR", GateType.NOR, 2, 4.0, 80.0),
        Cell("CAMO_XNOR", GateType.XNOR, 2, 4.0, 80.0),
        Cell("DFF", GateType.DFF, 1, 4.5, 90.0),
    ])
