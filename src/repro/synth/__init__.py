"""Logic synthesis: optimization passes, restructuring, technology mapping."""

from .passes import (
    BufferSweep,
    ConstantPropagation,
    DeadGateSweep,
    DoubleInversionElimination,
    PassReport,
    StructuralHashing,
    SynthesisPass,
)
from .restructure import (
    XorTree,
    balance_trees,
    collect_trees,
    reassociate_for_timing,
)
from .library import (
    Cell,
    CellLibrary,
    camouflage_library,
    nand_inv_library,
    standard_library,
)
from .techmap import decompose_variadic, map_to_library, to_nand_inv
from .optimizer import (
    SynthesisFlow,
    SynthesisResult,
    default_passes,
    synthesize,
)

__all__ = [
    "BufferSweep", "ConstantPropagation", "DeadGateSweep",
    "DoubleInversionElimination", "PassReport", "StructuralHashing",
    "SynthesisPass",
    "XorTree", "balance_trees", "collect_trees", "reassociate_for_timing",
    "Cell", "CellLibrary", "camouflage_library", "nand_inv_library",
    "standard_library",
    "decompose_variadic", "map_to_library", "to_nand_inv",
    "SynthesisFlow", "SynthesisResult", "default_passes", "synthesize",
]
