"""Synthesis flow driver: ordered passes with verification and reporting.

``SynthesisFlow`` is the logic-synthesis stage of the classical EDA flow
(paper Fig. 1).  It optimizes purely for PPA; the security-aware wrapper
in :mod:`repro.core.flow` adds the checks this stage classically lacks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..netlist import Netlist, exhaustive_truth_table, ppa_report
from ..netlist.metrics import PPAReport
from .library import CellLibrary
from .passes import (
    BufferSweep,
    ConstantPropagation,
    DeadGateSweep,
    DoubleInversionElimination,
    PassReport,
    StructuralHashing,
    SynthesisPass,
)
from .techmap import map_to_library


@dataclass
class SynthesisResult:
    """Netlist plus the per-pass trace and before/after PPA."""

    netlist: Netlist
    pass_reports: List[PassReport] = field(default_factory=list)
    ppa_before: Optional[PPAReport] = None
    ppa_after: Optional[PPAReport] = None

    @property
    def area_reduction(self) -> float:
        if not self.ppa_before or not self.ppa_before.area:
            return 0.0
        return 1.0 - self.ppa_after.area / self.ppa_before.area


def default_passes() -> List[SynthesisPass]:
    """The standard PPA-optimization pass order."""
    return [
        ConstantPropagation(),
        DoubleInversionElimination(),
        BufferSweep(),
        StructuralHashing(),
        DeadGateSweep(),
    ]


class SynthesisFlow:
    """Run optimization passes (optionally iterated) and tech mapping."""

    def __init__(self, passes: Optional[Sequence[SynthesisPass]] = None,
                 library: Optional[CellLibrary] = None,
                 iterations: int = 2) -> None:
        self.passes = list(passes) if passes is not None else default_passes()
        self.library = library
        self.iterations = iterations

    def run(self, netlist: Netlist, in_place: bool = False,
            verify: bool = False) -> SynthesisResult:
        """Optimize ``netlist``; optionally verify functional equivalence
        by exhaustive simulation (only feasible for small input counts).
        """
        golden = None
        if verify:
            golden = {
                out: exhaustive_truth_table(netlist, out)
                for out in netlist.outputs
            }
        work = netlist if in_place else netlist.copy()
        result = SynthesisResult(work, ppa_before=ppa_report(netlist))
        for _ in range(self.iterations):
            for synthesis_pass in self.passes:
                result.pass_reports.append(synthesis_pass(work))
        if self.library is not None:
            map_to_library(work, self.library)
        result.ppa_after = ppa_report(work)
        if verify:
            for out, table in golden.items():
                if exhaustive_truth_table(work, out) != table:
                    raise AssertionError(
                        f"synthesis changed the function of output {out!r}"
                    )
        return result


def synthesize(netlist: Netlist, library: Optional[CellLibrary] = None,
               verify: bool = False) -> Netlist:
    """One-call synthesis: optimize and (optionally) map; returns new netlist."""
    return SynthesisFlow(library=library).run(netlist, verify=verify).netlist
