"""Classical logic-synthesis passes.

Each pass is a callable object mutating a netlist in place and returning
a :class:`PassReport`.  These are deliberately *security-unaware*: the
paper's central motivating observation (Sec. II-B) is that exactly such
PPA-driven rewrites destroy security properties, which the experiments
in :mod:`repro.sca.masking` and ``benchmarks/bench_fig2.py`` demonstrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..netlist import Gate, GateType, Netlist


@dataclass
class PassReport:
    """Outcome of one synthesis pass."""

    pass_name: str
    cells_before: int
    cells_after: int
    rewrites: int

    @property
    def removed(self) -> int:
        return self.cells_before - self.cells_after


def _dedupe(nets) -> List[str]:
    """Order-preserving removal of duplicate operands (idempotent ops)."""
    seen: Set[str] = set()
    out: List[str] = []
    for net in nets:
        if net not in seen:
            seen.add(net)
            out.append(net)
    return out


def _xor_survivors(nets) -> List[str]:
    """Operands appearing an odd number of times (XOR self-cancellation)."""
    counts: Dict[str, int] = {}
    order: List[str] = []
    for net in nets:
        if net not in counts:
            order.append(net)
        counts[net] = counts.get(net, 0) + 1
    return [net for net in order if counts[net] % 2 == 1]


class SynthesisPass:
    """Base class; subclasses implement :meth:`apply`."""

    name = "base"

    def apply(self, netlist: Netlist) -> int:
        """Mutate ``netlist``; return the number of rewrites performed."""
        raise NotImplementedError

    def __call__(self, netlist: Netlist) -> PassReport:
        before = netlist.num_cells()
        rewrites = self.apply(netlist)
        netlist.invalidate()
        return PassReport(self.name, before, netlist.num_cells(), rewrites)


class ConstantPropagation(SynthesisPass):
    """Fold constants through the logic.

    ``AND(x, 0) -> 0``, ``AND(x, 1) -> x``, ``XOR(x, 0) -> x``,
    ``XOR(x, 1) -> NOT x``, ``NOT(const) -> const``, ``MUX`` with a
    constant select collapses to one data input, etc.
    """

    name = "constprop"

    def apply(self, netlist: Netlist) -> int:
        """Iteratively fold constants until a fixed point; returns rewrites."""
        rewrites = 0
        changed = True
        while changed:
            changed = False
            const_of: Dict[str, int] = {}
            for net in netlist.topological_order():
                g = netlist.gates[net]
                if g.gate_type is GateType.CONST0:
                    const_of[net] = 0
                elif g.gate_type is GateType.CONST1:
                    const_of[net] = 1
            for net in list(netlist.topological_order()):
                g = netlist.gates[net]
                replacement = self._fold(netlist, g, const_of)
                if replacement is not None and replacement != net:
                    netlist.rewire_consumers(net, replacement,
                                             keep_outputs=False)
                    rewrites += 1
                    changed = True
            netlist.sweep_dangling()
        return rewrites

    def _const_net(self, netlist: Netlist, value: int) -> str:
        wanted = GateType.CONST1 if value else GateType.CONST0
        for g in netlist.gates.values():
            if g.gate_type is wanted:
                return g.name
        return netlist.add(wanted, [], prefix="const")

    def _fold(self, netlist: Netlist, g: Gate,
              const_of: Dict[str, int]) -> Optional[str]:
        t = g.gate_type
        if not t.is_combinational or t.is_source:
            return None
        consts = [const_of[fi] for fi in g.fanins if fi in const_of]
        if t is GateType.BUF:
            # Output buffers preserve port names; leave them alone.
            return None if g.name in netlist.outputs else g.fanins[0]
        if t is GateType.NOT and g.fanins[0] in const_of:
            return self._const_net(netlist, 1 - const_of[g.fanins[0]])
        if t in (GateType.AND, GateType.NAND):
            invert = t is GateType.NAND
            if 0 in consts:
                return self._const_net(netlist, 1 if invert else 0)
            keep = _dedupe(fi for fi in g.fanins if const_of.get(fi) != 1)
            return self._shrink(netlist, g, keep, GateType.AND, invert, 1)
        if t in (GateType.OR, GateType.NOR):
            invert = t is GateType.NOR
            if 1 in consts:
                return self._const_net(netlist, 0 if invert else 1)
            keep = _dedupe(fi for fi in g.fanins if const_of.get(fi) != 0)
            return self._shrink(netlist, g, keep, GateType.OR, invert, 0)
        if t in (GateType.XOR, GateType.XNOR):
            keep = _xor_survivors(fi for fi in g.fanins if fi not in const_of)
            parity = sum(consts) & 1
            if t is GateType.XNOR:
                parity ^= 1
            if len(keep) == len(g.fanins) and t is GateType.XOR:
                return None  # nothing folded
            if keep == list(g.fanins) and t is GateType.XNOR and not consts:
                return None  # avoid rebuilding an identical gate forever
            return self._rebuild_xor(netlist, keep, parity)
        if t is GateType.MUX:
            sel, d0, d1 = g.fanins
            if sel in const_of:
                return d1 if const_of[sel] else d0
            if d0 == d1:
                return d0
            if d0 in const_of and d1 in const_of:
                if const_of[d0] == const_of[d1]:
                    return self._const_net(netlist, const_of[d0])
                # MUX(s, 0, 1) = s ; MUX(s, 1, 0) = NOT s
                if const_of[d0] == 0:
                    return sel
                return netlist.add(GateType.NOT, [sel], prefix="cp_inv")
        return None

    def _shrink(self, netlist: Netlist, g: Gate, keep: List[str],
                base: GateType, invert: bool, identity: int) -> Optional[str]:
        if len(keep) == len(g.fanins):
            return None
        if not keep:
            return self._const_net(netlist, identity if not invert
                                   else 1 - identity)
        if len(keep) == 1:
            if invert:
                return netlist.add(GateType.NOT, keep, prefix="cp_inv")
            return keep[0]
        new_type = base
        if invert:
            new_type = GateType.NAND if base is GateType.AND else GateType.NOR
        return netlist.add(new_type, keep, prefix="cp")

    def _rebuild_xor(self, netlist: Netlist, keep: List[str],
                     invert: int) -> Optional[str]:
        if not keep:
            return self._const_net(netlist, invert)
        if len(keep) == 1:
            if invert:
                return netlist.add(GateType.NOT, keep, prefix="cp_inv")
            return keep[0]
        new_type = GateType.XNOR if invert else GateType.XOR
        return netlist.add(new_type, keep, prefix="cp")


class StructuralHashing(SynthesisPass):
    """Merge structurally identical gates (common-subexpression elimination).

    Fanins of commutative gates are compared as multisets.  This is the
    sharing-driven optimization that, applied to a masked circuit,
    merges share-wise redundant logic and can collapse the very
    redundancy masking relies on.
    """

    name = "strash"

    def apply(self, netlist: Netlist) -> int:
        """Merge structural duplicates until a fixed point; returns merges."""
        rewrites = 0
        changed = True
        commutative = {GateType.AND, GateType.NAND, GateType.OR,
                       GateType.NOR, GateType.XOR, GateType.XNOR}
        while changed:
            changed = False
            seen: Dict[Tuple, str] = {}
            outputs = set(netlist.outputs)
            for net in list(netlist.topological_order()):
                g = netlist.gates.get(net)
                if g is None or not g.gate_type.is_combinational:
                    continue
                if g.gate_type in commutative:
                    # Multiset of fanins: order-insensitive, but
                    # multiplicity matters (XOR(a,a,b) != XOR(a,b,b)).
                    key = (g.gate_type, tuple(sorted(g.fanins)))
                else:
                    key = (g.gate_type, tuple(g.fanins))
                if key in seen and seen[key] != net:
                    keep, drop = seen[key], net
                    # Never merge away a primary-output driver: its
                    # port name must survive.
                    if drop in outputs and keep not in outputs:
                        keep, drop = drop, keep
                        seen[key] = keep
                    if drop in outputs:
                        continue  # both drive outputs: leave them be
                    netlist.rewire_consumers(drop, keep)
                    rewrites += 1
                    changed = True
                else:
                    seen[key] = net
            netlist.sweep_dangling()
        return rewrites


class DoubleInversionElimination(SynthesisPass):
    """Collapse NOT(NOT(x)) and BUF chains to x."""

    name = "inv2"

    def apply(self, netlist: Netlist) -> int:
        """Collapse double inversions; returns the number removed."""
        rewrites = 0
        for net in list(netlist.topological_order()):
            g = netlist.gates.get(net)
            if g is None or g.gate_type is not GateType.NOT:
                continue
            inner = netlist.gates[g.fanins[0]]
            if inner.gate_type is GateType.NOT:
                netlist.rewire_consumers(net, inner.fanins[0])
                rewrites += 1
        netlist.sweep_dangling()
        return rewrites


class BufferSweep(SynthesisPass):
    """Remove BUF cells that only exist as naming aliases.

    Buffers driving primary outputs are kept so port names survive.
    """

    name = "bufsweep"

    def apply(self, netlist: Netlist) -> int:
        """Bypass internal buffers; returns the number removed."""
        rewrites = 0
        outputs = set(netlist.outputs)
        for net in list(netlist.topological_order()):
            g = netlist.gates.get(net)
            if g is None or g.gate_type is not GateType.BUF:
                continue
            if net in outputs:
                continue
            netlist.rewire_consumers(net, g.fanins[0])
            rewrites += 1
        netlist.sweep_dangling()
        return rewrites


class DeadGateSweep(SynthesisPass):
    """Remove logic with no path to any primary output or flop."""

    name = "sweep"

    def apply(self, netlist: Netlist) -> int:
        """Remove dangling logic; returns the number of gates removed."""
        return netlist.sweep_dangling()
