"""Canonical netlist serialization and content hashing.

The flow-execution service (:mod:`repro.service`) caches every flow
result on disk keyed by *what was computed on what*: a stable hash of
the input netlist, a stable hash of the pipeline/job parameters, and a
seed.  Two requirements drive this module:

* **round-trip fidelity** — :func:`netlist_to_dict` /
  :func:`netlist_from_dict` preserve everything observable, including
  gate *insertion order* (which fixes ``inputs`` order, candidate-site
  enumeration in transforms like ``lock_xor``, and therefore the exact
  bits any seeded downstream computation produces);
* **structural stability** — :func:`netlist_hash` must assign the
  *same* digest to two structurally identical netlists even if their
  gates were inserted in different orders, so a cache populated by one
  construction path is hit by another.

Those pull in opposite directions, which is why the canonical *hash*
form (gates sorted by net name) is distinct from the *transport* form
(gates in insertion order).
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, List, Union

from .gates import GateType
from .netlist import Netlist

#: JSON scalar types admitted in canonical spec hashing.
_SCALARS = (str, int, float, bool, type(None))


def canonical_json(obj: object) -> str:
    """Deterministic JSON encoding of a JSON-able object.

    Dict keys are sorted recursively, so two dicts with the same
    mapping but different insertion histories encode identically.
    Raises :class:`TypeError` on values JSON cannot represent — specs
    meant for hashing must be built from scalars, lists, and dicts.
    """
    return json.dumps(obj, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def stable_hash(obj: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


def netlist_to_dict(netlist: Netlist) -> Dict[str, object]:
    """Transport form: everything needed to rebuild the netlist exactly.

    Gates are listed in insertion order — that order is observable
    (``inputs``, transform site enumeration) and must survive the
    round trip bit-for-bit.
    """
    return {
        "name": netlist.name,
        "gates": [[g.name, g.gate_type.value, list(g.fanins)]
                  for g in netlist.gates.values()],
        "outputs": list(netlist.outputs),
    }


def netlist_from_dict(data: Dict[str, object],
                      validate: bool = False) -> Netlist:
    """Rebuild a :class:`Netlist` from :func:`netlist_to_dict` output.

    ``add_gate`` tolerates forward references in fanins, so gates are
    replayed in their stored (insertion) order directly.  Pass
    ``validate=True`` to re-run full structural validation on data
    from outside the artifact store.
    """
    netlist = Netlist(str(data["name"]))
    for name, type_value, fanins in data["gates"]:
        netlist.add_gate(name, GateType(type_value), list(fanins))
    for net in data["outputs"]:
        netlist.add_output(net)
    if validate:
        netlist.validate()
    return netlist


def canonical_form(netlist: Netlist) -> Dict[str, object]:
    """Structural identity of a netlist, insertion-order independent.

    Gates are sorted by the net they drive (unique by the single-driver
    discipline).  The output list keeps its order — it is semantic
    (word decoding, miter construction).  The netlist *name* is
    excluded: renaming a design does not change what any flow computes
    on it.
    """
    return {
        "gates": sorted(
            [g.name, g.gate_type.value, list(g.fanins)]
            for g in netlist.gates.values()
        ),
        "outputs": list(netlist.outputs),
    }


def netlist_hash(netlist: Netlist) -> str:
    """SHA-256 digest of the structural :func:`canonical_form`.

    Two structurally identical netlists hash equal regardless of the
    order their gates were inserted in; any change to a gate type, a
    fanin, or the output list changes the digest.
    """
    return stable_hash(canonical_form(netlist))


def transport_hash(netlist: Netlist) -> str:
    """SHA-256 digest of the order-preserving transport form.

    The artifact-store address of a *stored* netlist.  Unlike
    :func:`netlist_hash`, gate insertion order is part of the digest,
    because the stored form preserves it and it is observable: seeded
    site enumeration walks it, so two structurally identical netlists
    built in different orders are different transport artifacts — a
    job addressing one can never be computed (or cache-served) against
    the other's ordering.  The netlist name is excluded, as in
    :func:`netlist_hash`.
    """
    data = netlist_to_dict(netlist)
    return stable_hash({"gates": data["gates"],
                        "outputs": data["outputs"]})


def dumps_netlist(netlist: Netlist) -> str:
    """JSON text of the transport form (stored in the artifact store)."""
    return json.dumps(netlist_to_dict(netlist), separators=(",", ":"))


def loads_netlist(text: Union[str, bytes]) -> Netlist:
    """Inverse of :func:`dumps_netlist`."""
    return netlist_from_dict(json.loads(text))
