"""Structural Verilog export/import for the netlist IR.

The interchange format the rest of the EDA world speaks.  Export emits
flat gate-level Verilog using primitive instantiations; import parses
the same subset (primitive gates, one module, scalar nets) — enough to
round-trip our own netlists and to ingest simple third-party gate-level
files.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Union

from .gates import GateType
from .netlist import Netlist, NetlistError

_PRIMITIVE_OF = {
    GateType.BUF: "buf",
    GateType.NOT: "not",
    GateType.AND: "and",
    GateType.NAND: "nand",
    GateType.OR: "or",
    GateType.NOR: "nor",
    GateType.XOR: "xor",
    GateType.XNOR: "xnor",
}
_TYPE_OF_PRIMITIVE = {v: k for k, v in _PRIMITIVE_OF.items()}

_IDENT = r"[A-Za-z_][A-Za-z0-9_$]*"


def _sanitize(name: str) -> str:
    """Make a net name Verilog-legal (deterministic, collision-free for
    our generated names)."""
    clean = re.sub(r"[^A-Za-z0-9_$]", "_", name)
    if not re.match(r"[A-Za-z_]", clean):
        clean = "n_" + clean
    return clean


def dumps_verilog(netlist: Netlist) -> str:
    """Serialize to flat structural Verilog."""
    rename = {net: _sanitize(net) for net in netlist.gates}
    if len(set(rename.values())) != len(rename):
        raise NetlistError("net names collide after sanitizing")
    inputs = [rename[i] for i in netlist.inputs]
    outputs = [rename[o] for o in netlist.outputs]
    ports = inputs + [o for o in outputs if o not in inputs]
    lines = [f"module {_sanitize(netlist.name)} ("]
    lines.append("    " + ", ".join(ports))
    lines.append(");")
    for name in inputs:
        lines.append(f"  input {name};")
    for name in outputs:
        if name not in inputs:
            lines.append(f"  output {name};")
    wires = [
        rename[g.name] for g in netlist.gates.values()
        if g.gate_type is not GateType.INPUT
        and rename[g.name] not in outputs
    ]
    for name in wires:
        lines.append(f"  wire {name};")
    index = 0
    for net in netlist.topological_order():
        g = netlist.gates[net]
        t = g.gate_type
        if t is GateType.INPUT:
            continue
        out = rename[net]
        if t is GateType.CONST0:
            lines.append(f"  assign {out} = 1'b0;")
        elif t is GateType.CONST1:
            lines.append(f"  assign {out} = 1'b1;")
        elif t is GateType.MUX:
            s, d0, d1 = (rename[fi] for fi in g.fanins)
            lines.append(
                f"  assign {out} = {s} ? {d1} : {d0};")
        elif t is GateType.DFF:
            d = rename[g.fanins[0]]
            lines.append(
                f"  dff u{index} ({out}, {d}); "
                f"// behavioural DFF placeholder")
            index += 1
        else:
            prim = _PRIMITIVE_OF[t]
            ins = ", ".join(rename[fi] for fi in g.fanins)
            lines.append(f"  {prim} u{index} ({out}, {ins});")
            index += 1
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


_GATE_RE = re.compile(
    rf"^\s*(?P<prim>{_IDENT})\s+{_IDENT}\s*\(\s*(?P<args>[^)]*)\)\s*;"
)
_ASSIGN_CONST_RE = re.compile(
    rf"^\s*assign\s+(?P<lhs>{_IDENT})\s*=\s*1'b(?P<bit>[01])\s*;"
)
_ASSIGN_MUX_RE = re.compile(
    rf"^\s*assign\s+(?P<lhs>{_IDENT})\s*=\s*(?P<s>{_IDENT})\s*\?\s*"
    rf"(?P<d1>{_IDENT})\s*:\s*(?P<d0>{_IDENT})\s*;"
)
_DECL_RE = re.compile(
    rf"^\s*(?P<kind>input|output|wire)\s+(?P<names>[^;]+);"
)
_MODULE_RE = re.compile(rf"^\s*module\s+(?P<name>{_IDENT})")


def loads_verilog(text: str) -> Netlist:
    """Parse the structural subset emitted by :func:`dumps_verilog`."""
    name = "top"
    inputs: List[str] = []
    outputs: List[str] = []
    gate_lines: List[str] = []
    # Join continuation lines (the port list spans several).
    logical: List[str] = []
    buffer = ""
    for raw in text.splitlines():
        line = raw.split("//", 1)[0].strip()
        if not line:
            continue
        buffer += " " + line
        if line.endswith(";") or line.startswith(("module",)) and \
                line.endswith(")"):
            logical.append(buffer.strip())
            buffer = ""
        elif line in ("endmodule",):
            logical.append(line)
            buffer = ""
    if buffer.strip():
        logical.append(buffer.strip())

    netlist: Netlist
    pending: List[tuple] = []
    for line in logical:
        m = _MODULE_RE.match(line)
        if m:
            name = m.group("name")
            continue
        m = _DECL_RE.match(line)
        if m:
            names = [n.strip() for n in m.group("names").split(",")
                     if n.strip()]
            if m.group("kind") == "input":
                inputs.extend(names)
            elif m.group("kind") == "output":
                outputs.extend(names)
            continue
        if line == "endmodule":
            continue
        gate_lines.append(line)

    netlist = Netlist(name)
    for inp in inputs:
        netlist.add_input(inp)
    for line in gate_lines:
        m = _ASSIGN_CONST_RE.match(line)
        if m:
            t = GateType.CONST1 if m.group("bit") == "1" else GateType.CONST0
            pending.append((m.group("lhs"), t, []))
            continue
        m = _ASSIGN_MUX_RE.match(line)
        if m:
            pending.append((m.group("lhs"), GateType.MUX,
                            [m.group("s"), m.group("d0"), m.group("d1")]))
            continue
        m = _GATE_RE.match(line)
        if m:
            prim = m.group("prim")
            args = [a.strip() for a in m.group("args").split(",")]
            out, ins = args[0], args[1:]
            if prim == "dff":
                pending.append((out, GateType.DFF, ins))
            elif prim in _TYPE_OF_PRIMITIVE:
                pending.append((out, _TYPE_OF_PRIMITIVE[prim], ins))
            else:
                raise NetlistError(f"unknown primitive {prim!r}")
            continue
        raise NetlistError(f"cannot parse line: {line!r}")
    for out, gate_type, ins in pending:
        netlist.add_gate(out, gate_type, ins)
    for out in outputs:
        netlist.add_output(out)
    netlist.validate()
    return netlist


def dump_verilog(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write structural Verilog to a file."""
    Path(path).write_text(dumps_verilog(netlist))


def load_verilog(path: Union[str, Path]) -> Netlist:
    """Read the structural-Verilog subset from a file."""
    return loads_verilog(Path(path).read_text())
