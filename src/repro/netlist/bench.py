"""Reader/writer for the ISCAS-85/89 BENCH netlist format.

BENCH is the lingua franca of the hardware-security benchmark suites the
paper's cited attacks are evaluated on (ISCAS, ITC).  Example::

    INPUT(a)
    INPUT(b)
    OUTPUT(y)
    t = AND(a, b)
    y = NOT(t)
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Union

from .gates import GateType
from .netlist import Netlist, NetlistError

_LINE_RE = re.compile(
    r"^\s*(?P<lhs>[\w.\[\]$]+)\s*=\s*(?P<op>\w+)\s*\((?P<args>[^)]*)\)\s*$"
)
_IO_RE = re.compile(r"^\s*(?P<kind>INPUT|OUTPUT)\s*\((?P<net>[\w.\[\]$]+)\)\s*$")

_OP_TO_TYPE = {
    "BUF": GateType.BUF,
    "BUFF": GateType.BUF,
    "NOT": GateType.NOT,
    "INV": GateType.NOT,
    "AND": GateType.AND,
    "NAND": GateType.NAND,
    "OR": GateType.OR,
    "NOR": GateType.NOR,
    "XOR": GateType.XOR,
    "XNOR": GateType.XNOR,
    "MUX": GateType.MUX,
    "DFF": GateType.DFF,
    "CONST0": GateType.CONST0,
    "CONST1": GateType.CONST1,
}
_TYPE_TO_OP = {
    GateType.BUF: "BUF",
    GateType.NOT: "NOT",
    GateType.AND: "AND",
    GateType.NAND: "NAND",
    GateType.OR: "OR",
    GateType.NOR: "NOR",
    GateType.XOR: "XOR",
    GateType.XNOR: "XNOR",
    GateType.MUX: "MUX",
    GateType.DFF: "DFF",
    GateType.CONST0: "CONST0",
    GateType.CONST1: "CONST1",
}


def loads(text: str, name: str = "top") -> Netlist:
    """Parse BENCH text into a :class:`Netlist`."""
    netlist = Netlist(name)
    pending_outputs = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io = _IO_RE.match(line)
        if io:
            if io.group("kind") == "INPUT":
                netlist.add_input(io.group("net"))
            else:
                pending_outputs.append(io.group("net"))
            continue
        m = _LINE_RE.match(line)
        if not m:
            raise NetlistError(f"line {lineno}: cannot parse {raw!r}")
        op = m.group("op").upper()
        if op not in _OP_TO_TYPE:
            raise NetlistError(f"line {lineno}: unknown op {op!r}")
        args = [a.strip() for a in m.group("args").split(",") if a.strip()]
        netlist.add_gate(m.group("lhs"), _OP_TO_TYPE[op], args)
    for net in pending_outputs:
        netlist.add_output(net)
    netlist.validate()
    return netlist


def dumps(netlist: Netlist) -> str:
    """Serialize a :class:`Netlist` to BENCH text."""
    lines = [f"# {netlist.name}"]
    lines.extend(f"INPUT({net})" for net in netlist.inputs)
    lines.extend(f"OUTPUT({net})" for net in netlist.outputs)
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type is GateType.INPUT:
            continue
        op = _TYPE_TO_OP[g.gate_type]
        lines.append(f"{g.name} = {op}({', '.join(g.fanins)})")
    return "\n".join(lines) + "\n"


def load(path: Union[str, Path]) -> Netlist:
    """Read a BENCH file into a :class:`Netlist` (named after the file)."""
    path = Path(path)
    return loads(path.read_text(), name=path.stem)


def dump(netlist: Netlist, path: Union[str, Path]) -> None:
    """Write a :class:`Netlist` to a BENCH file."""
    Path(path).write_text(dumps(netlist))
