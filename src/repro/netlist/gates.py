"""Gate primitives for the gate-level netlist intermediate representation.

Every combinational cell is one of the :class:`GateType` members below.
Evaluation is *bit-parallel*: signal values are Python integers treated as
packed vectors of ``width`` independent simulation patterns, so a single
pass over the netlist simulates up to thousands of patterns at once.
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateType(enum.Enum):
    """Cell types supported by the netlist IR.

    ``INPUT`` marks a primary input, ``DFF`` a D flip-flop (its single
    fanin is the D pin; its output is the current state).  All other
    members are combinational cells.  ``AND``/``OR``/``XOR`` and their
    complements accept two or more fanins; ``BUF``/``NOT`` exactly one;
    ``MUX`` exactly three (select, data0, data1).
    """

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    NAND = "nand"
    OR = "or"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MUX = "mux"
    DFF = "dff"

    @property
    def is_inverting(self) -> bool:
        """True for cells whose output is the complement of a base function."""
        return self in _INVERTING

    @property
    def base(self) -> "GateType":
        """The non-inverting counterpart (NAND -> AND, NOT -> BUF, ...)."""
        return _BASE_OF.get(self, self)

    @property
    def is_combinational(self) -> bool:
        return self not in (GateType.INPUT, GateType.DFF)

    @property
    def is_source(self) -> bool:
        """True for cells with no required fanin (inputs and constants)."""
        return self in (GateType.INPUT, GateType.CONST0, GateType.CONST1)


_INVERTING = frozenset(
    {GateType.NOT, GateType.NAND, GateType.NOR, GateType.XNOR}
)
_BASE_OF = {
    GateType.NOT: GateType.BUF,
    GateType.NAND: GateType.AND,
    GateType.NOR: GateType.OR,
    GateType.XNOR: GateType.XOR,
}

#: Gate types accepting two or more fanins.
VARIADIC_TYPES = frozenset(
    {GateType.AND, GateType.NAND, GateType.OR, GateType.NOR,
     GateType.XOR, GateType.XNOR}
)

#: Exact fanin arity for fixed-arity types (None entries are variadic).
FIXED_ARITY = {
    GateType.INPUT: 0,
    GateType.CONST0: 0,
    GateType.CONST1: 0,
    GateType.BUF: 1,
    GateType.NOT: 1,
    GateType.MUX: 3,
    GateType.DFF: 1,
}


def check_arity(gate_type: GateType, n_fanins: int) -> None:
    """Raise ``ValueError`` if ``n_fanins`` is illegal for ``gate_type``."""
    if gate_type in VARIADIC_TYPES:
        if n_fanins < 2:
            raise ValueError(
                f"{gate_type.name} requires >=2 fanins, got {n_fanins}"
            )
        return
    expected = FIXED_ARITY[gate_type]
    if n_fanins != expected:
        raise ValueError(
            f"{gate_type.name} requires exactly {expected} fanins, "
            f"got {n_fanins}"
        )


def evaluate(gate_type: GateType, fanin_values: Sequence[int], mask: int) -> int:
    """Evaluate one gate over bit-parallel operand words.

    ``mask`` is ``(1 << width) - 1`` for a ``width``-pattern simulation and
    bounds the result of inverting operations.

    ``INPUT`` and ``DFF`` cannot be evaluated here: their values come from
    the stimulus / state, not from fanins.
    """
    t = gate_type
    v = fanin_values
    if t is GateType.CONST0:
        return 0
    if t is GateType.CONST1:
        return mask
    if t is GateType.BUF:
        return v[0]
    if t is GateType.NOT:
        return ~v[0] & mask
    if t is GateType.AND or t is GateType.NAND:
        out = v[0]
        for x in v[1:]:
            out &= x
        return out if t is GateType.AND else ~out & mask
    if t is GateType.OR or t is GateType.NOR:
        out = v[0]
        for x in v[1:]:
            out |= x
        return out if t is GateType.OR else ~out & mask
    if t is GateType.XOR or t is GateType.XNOR:
        out = v[0]
        for x in v[1:]:
            out ^= x
        return out if t is GateType.XOR else ~out & mask
    if t is GateType.MUX:
        sel, d0, d1 = v
        return ((~sel & d0) | (sel & d1)) & mask
    raise ValueError(f"cannot evaluate {t.name} combinationally")
