"""Compiled gate-level simulation engine.

The reference interpreter in :mod:`repro.netlist.simulate` walks the
topological order and re-resolves string-keyed dicts plus a per-gate
``evaluate()`` dispatch on every invocation.  That cost is paid millions
of times across this repository: TVLA/CPA trace generation, fault
campaigns, SAT-attack oracles, MERO trigger search, and the DSE sweeps
all funnel through ``simulate()``.

:class:`CompiledNetlist` lowers a :class:`~repro.netlist.Netlist` *once*
into a flat, integer-indexed gate program over a dense net-index space:

* net names are replaced by topological indices,
* the per-gate dispatch is replaced by generated Python source — one
  straight-line statement per gate (``v17 = ~(v3 & v5) & mask``) compiled
  to a single function, so the hot loop contains no dict lookups, no
  enum comparisons, and no per-gate call overhead,
* arrays of opcodes / fanin indices / logic levels / combinational
  consumers are kept alongside for incremental uses (single-fault
  propagation, per-level trace aggregation).

Compilation is cached on the netlist instance and invalidated through
the existing ``_topo_cache`` hook: every mutation path in
:class:`~repro.netlist.Netlist` drops the topo cache, and the engine
recompiles whenever the topo list object it captured is no longer the
netlist's current one.  Packed-word semantics are bit-exact with the
reference interpreter (property-tested in ``tests/test_engine.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .gates import GateType
from .netlist import Netlist, NetlistError

#: Integer opcodes for the interpreted (incremental) evaluation path.
OP_INPUT = 0
OP_DFF = 1
OP_CONST0 = 2
OP_CONST1 = 3
OP_BUF = 4
OP_NOT = 5
OP_AND = 6
OP_NAND = 7
OP_OR = 8
OP_NOR = 9
OP_XOR = 10
OP_XNOR = 11
OP_MUX = 12

_OPCODE = {
    GateType.INPUT: OP_INPUT,
    GateType.DFF: OP_DFF,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.MUX: OP_MUX,
}


#: Generated-source -> compiled chunk tuple, shared across structurally
#: identical netlists.  FIFO-bounded; entries are small (code objects).
_PROGRAM_MEMO: Dict[str, tuple] = {}
_PROGRAM_MEMO_MAX = 64


class CompiledNetlist:
    """A netlist lowered to a flat, integer-indexed gate program.

    Instances are immutable snapshots of one topology; obtain them via
    :func:`get_compiled`, which caches one per netlist and recompiles
    after any structural mutation.
    """

    __slots__ = (
        "netlist", "names", "index", "input_names", "flop_names",
        "opcodes", "fanins", "levels", "depth", "consumers",
        "_topo_ref", "_input_pos", "_flop_pos", "_fn", "_evals",
    )

    def __init__(self, netlist: Netlist) -> None:
        order = netlist.topological_order()
        self.netlist = netlist
        self._topo_ref = order
        self.names: List[str] = list(order)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
        self.input_names: List[str] = netlist.inputs
        self.flop_names: List[str] = netlist.flops
        self._input_pos = {n: i for i, n in enumerate(self.input_names)}
        self._flop_pos = {n: i for i, n in enumerate(self.flop_names)}

        gates = netlist.gates
        n = len(order)
        self.opcodes: List[int] = [0] * n
        self.fanins: List[Tuple[int, ...]] = [()] * n
        self.levels: List[int] = [0] * n
        # Combinational consumers only: fault effects and incremental
        # re-evaluation never propagate through a DFF within one cycle.
        self.consumers: List[List[int]] = [[] for _ in range(n)]
        for i, net in enumerate(order):
            g = gates[net]
            op = _OPCODE[g.gate_type]
            self.opcodes[i] = op
            fis = tuple(self.index[fi] for fi in g.fanins)
            self.fanins[i] = fis
            if op in (OP_INPUT, OP_DFF, OP_CONST0, OP_CONST1):
                self.levels[i] = 0
            else:
                self.levels[i] = 1 + max(self.levels[fi] for fi in fis)
                for fi in fis:
                    self.consumers[fi].append(i)
        self.depth = max(self.levels) if self.levels else 0
        # Code generation is lazy: the first evaluation runs over the
        # opcode arrays directly, and the straight-line program is only
        # generated and compiled from the second evaluation on.  Repeat
        # consumers (trace campaigns, oracles) amortize the compile;
        # mutate-once-simulate-once patterns (fault injection sweeps,
        # DSE candidate scoring) never pay it.
        self._fn: Optional[tuple] = None
        self._evals = 0

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------

    #: Statements per generated sub-function.  CPython's compiler goes
    #: superlinear on very large function bodies (~0.8 s at 8k
    #: statements vs ~0.08 s at 4k), so the program is split into
    #: chunks that each write their slice of a shared value list.
    CHUNK_STATEMENTS = 2000

    def _codegen(self):
        """Emit the gate program as chunked straight-line Python.

        Each chunk is one function ``_c(V, IN, ST, mask)`` holding its
        gates in fast locals and flushing them into the dense value
        list ``V`` with a single slice assignment; cross-chunk fanins
        read ``V[j]`` directly.  BUF gates are aliased away (their
        reference *is* the fanin's), so the generated body contains
        exactly one bitwise expression per logic cell.
        """
        n = len(self.names)
        # Resolve BUF chains to their driving root once.
        root = list(range(n))
        for i, op in enumerate(self.opcodes):
            if op == OP_BUF:
                root[i] = root[self.fanins[i][0]]

        sources = []
        start = 0
        while start < n or (n == 0 and start == 0):
            stop = min(n, start + self.CHUNK_STATEMENTS)

            def ref(j: int, _start=start) -> str:
                r = root[j]
                return f"v{r}" if r >= _start else f"V[{r}]"

            lines = ["def _c(V, IN, ST, mask):"]
            for i in range(start, stop):
                op = self.opcodes[i]
                fis = self.fanins[i]
                if op == OP_INPUT:
                    expr = f"IN[{self._input_pos[self.names[i]]}] & mask"
                elif op == OP_DFF:
                    expr = f"ST[{self._flop_pos[self.names[i]]}] & mask"
                elif op == OP_CONST0:
                    expr = "0"
                elif op == OP_CONST1:
                    expr = "mask"
                elif op == OP_BUF:
                    continue
                elif op == OP_NOT:
                    expr = f"~{ref(fis[0])} & mask"
                elif op == OP_AND:
                    expr = " & ".join(ref(fi) for fi in fis)
                elif op == OP_NAND:
                    expr = ("~(" + " & ".join(ref(fi) for fi in fis)
                            + ") & mask")
                elif op == OP_OR:
                    expr = " | ".join(ref(fi) for fi in fis)
                elif op == OP_NOR:
                    expr = ("~(" + " | ".join(ref(fi) for fi in fis)
                            + ") & mask")
                elif op == OP_XOR:
                    expr = " ^ ".join(ref(fi) for fi in fis)
                elif op == OP_XNOR:
                    expr = ("~(" + " ^ ".join(ref(fi) for fi in fis)
                            + ") & mask")
                else:  # OP_MUX: (select, data0, data1)
                    s, d0, d1 = (ref(fi) for fi in fis)
                    expr = f"(~{s} & {d0}) | ({s} & {d1})"
                lines.append(f"    v{i} = {expr}")
            flush = ",".join(ref(i) for i in range(start, stop))
            lines.append(f"    V[{start}:{stop}] = [{flush}]")
            sources.append("\n".join(lines))
            start = stop
            if n == 0:
                break
        # The generated source is a complete structural signature and
        # the chunk functions close over nothing instance-specific, so
        # structurally identical netlists (benchmarks rebuild the same
        # design repeatedly) share one compiled program.
        key = "\x00".join(sources)
        cached = _PROGRAM_MEMO.get(key)
        if cached is not None:
            return cached
        chunk_fns = []
        for source in sources:
            namespace: Dict[str, object] = {}
            exec(compile(source, "<compiled-netlist>", "exec"), namespace)
            chunk_fns.append(namespace["_c"])
        program = tuple(chunk_fns)
        if len(_PROGRAM_MEMO) >= _PROGRAM_MEMO_MAX:
            _PROGRAM_MEMO.pop(next(iter(_PROGRAM_MEMO)))
        _PROGRAM_MEMO[key] = program
        return program

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval_words(self, inputs: Mapping[str, int], width: int = 1,
                   state: Optional[Mapping[str, int]] = None) -> List[int]:
        """Packed value of every net, indexed like :attr:`names`."""
        mask = (1 << width) - 1
        try:
            stim = [inputs[name] for name in self.input_names]
        except KeyError as missing:
            raise NetlistError(
                f"missing stimulus for input {missing.args[0]!r}") from None
        if state:
            regs = [state.get(ff, 0) for ff in self.flop_names]
        else:
            regs = [0] * len(self.flop_names)
        values: List[int] = [0] * len(self.names)
        if self._fn is None:
            if self._evals == 0:
                self._evals = 1
                self._interpret(values, stim, regs, mask)
                return values
            self._fn = self._codegen()
        for chunk in self._fn:
            chunk(values, stim, regs, mask)
        return values

    def _interpret(self, values: List[int], stim: Sequence[int],
                   regs: Sequence[int], mask: int) -> None:
        """One full evaluation straight off the opcode arrays.

        Used for the first evaluation of a topology, before code
        generation has paid for itself.
        """
        value_of = values.__getitem__
        for i, op in enumerate(self.opcodes):
            if op == OP_INPUT:
                values[i] = stim[self._input_pos[self.names[i]]] & mask
            elif op == OP_DFF:
                values[i] = regs[self._flop_pos[self.names[i]]] & mask
            else:
                values[i] = self._eval_gate(i, value_of, mask)

    def simulate(self, inputs: Mapping[str, int], width: int = 1,
                 state: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Drop-in replacement for the reference ``simulate()``."""
        return dict(zip(self.names, self.eval_words(inputs, width, state)))

    # ------------------------------------------------------------------
    # Incremental single-fault propagation
    # ------------------------------------------------------------------

    def _eval_gate(self, i: int, value_of, mask: int) -> int:
        """Interpreted evaluation of one gate (incremental path only)."""
        op = self.opcodes[i]
        fis = self.fanins[i]
        if op == OP_BUF:
            return value_of(fis[0])
        if op == OP_NOT:
            return ~value_of(fis[0]) & mask
        if op == OP_AND or op == OP_NAND:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out &= value_of(fi)
            return out if op == OP_AND else ~out & mask
        if op == OP_OR or op == OP_NOR:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out |= value_of(fi)
            return out if op == OP_OR else ~out & mask
        if op == OP_XOR or op == OP_XNOR:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out ^= value_of(fi)
            return out if op == OP_XOR else ~out & mask
        if op == OP_MUX:
            s, d0, d1 = (value_of(fi) for fi in fis)
            return (~s & d0) | (s & d1)
        if op == OP_CONST0:
            return 0
        if op == OP_CONST1:
            return mask
        raise NetlistError("INPUT/DFF gates take values from the stimulus")

    def propagate_force(self, golden: Sequence[int], site: int,
                        forced: int, width: int) -> Dict[int, int]:
        """Net values that change when ``site`` is forced to ``forced``.

        ``golden`` is a fault-free :meth:`eval_words` result for the same
        stimulus.  Returns ``{net index: new packed value}`` for every
        net whose value differs from golden — the single-fault cone,
        computed event-driven in topological order without re-simulating
        or copying the netlist.  Effects stop at DFFs (state comes from
        the stimulus, exactly as in a flat ``simulate()`` call).
        """
        mask = (1 << width) - 1
        forced &= mask
        if forced == golden[site]:
            return {}
        changed: Dict[int, int] = {site: forced}

        def value_of(i: int, _changed=changed, _golden=golden):
            v = _changed.get(i)
            return _golden[i] if v is None else v

        heap = list(self.consumers[site])
        heapify(heap)
        queued = set(heap)
        while heap:
            i = heappop(heap)
            queued.discard(i)
            new = self._eval_gate(i, value_of, mask)
            if new != golden[i]:
                changed[i] = new
                for consumer in self.consumers[i]:
                    if consumer not in queued:
                        queued.add(consumer)
                        heappush(heap, consumer)
        return changed

    def fault_detects(self, golden: Sequence[int], site: int, forced: int,
                      output_indices: frozenset, width: int) -> bool:
        """True when forcing ``site`` flips some primary output pattern."""
        changed = self.propagate_force(golden, site, forced, width)
        return not output_indices.isdisjoint(changed)


def get_compiled(netlist: Netlist) -> CompiledNetlist:
    """The cached compiled program for ``netlist`` (recompiling if stale).

    Staleness is detected through the ``_topo_cache`` identity: every
    structural mutation in :class:`Netlist` invalidates the topo cache,
    and :meth:`Netlist.topological_order` builds a *new* list object on
    the next call, so an identity mismatch precisely captures
    "mutated since compilation".
    """
    cached = getattr(netlist, "_compiled", None)
    if cached is not None and cached._topo_ref is netlist._topo_cache:
        return cached
    compiled = CompiledNetlist(netlist)
    netlist._compiled = compiled
    return compiled
