"""Compiled gate-level simulation engine.

The reference interpreter in :mod:`repro.netlist.simulate` walks the
topological order and re-resolves string-keyed dicts plus a per-gate
``evaluate()`` dispatch on every invocation.  That cost is paid millions
of times across this repository: TVLA/CPA trace generation, fault
campaigns, SAT-attack oracles, MERO trigger search, and the DSE sweeps
all funnel through ``simulate()``.

:class:`CompiledNetlist` lowers a :class:`~repro.netlist.Netlist` *once*
into a flat, integer-indexed gate program over a dense net-index space:

* net names are replaced by topological indices,
* the per-gate dispatch is replaced by generated Python source — one
  straight-line statement per gate (``v17 = ~(v3 & v5) & mask``) compiled
  to a single function, so the hot loop contains no dict lookups, no
  enum comparisons, and no per-gate call overhead,
* arrays of opcodes / fanin indices / logic levels / combinational
  consumers are kept alongside for incremental uses (single-fault
  propagation, per-level trace aggregation).

Compilation is cached on the netlist instance and invalidated through
the existing ``_topo_cache`` hook: every mutation path in
:class:`~repro.netlist.Netlist` drops the topo cache, and the engine
recompiles whenever the topo list object it captured is no longer the
netlist's current one.  Packed-word semantics are bit-exact with the
reference interpreter (property-tested in ``tests/test_engine.py``).
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import (
    Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union,
)

from .gates import GateType
from .netlist import Netlist, NetlistError

#: Integer opcodes for the interpreted (incremental) evaluation path.
OP_INPUT = 0
OP_DFF = 1
OP_CONST0 = 2
OP_CONST1 = 3
OP_BUF = 4
OP_NOT = 5
OP_AND = 6
OP_NAND = 7
OP_OR = 8
OP_NOR = 9
OP_XOR = 10
OP_XNOR = 11
OP_MUX = 12

_OPCODE = {
    GateType.INPUT: OP_INPUT,
    GateType.DFF: OP_DFF,
    GateType.CONST0: OP_CONST0,
    GateType.CONST1: OP_CONST1,
    GateType.BUF: OP_BUF,
    GateType.NOT: OP_NOT,
    GateType.AND: OP_AND,
    GateType.NAND: OP_NAND,
    GateType.OR: OP_OR,
    GateType.NOR: OP_NOR,
    GateType.XOR: OP_XOR,
    GateType.XNOR: OP_XNOR,
    GateType.MUX: OP_MUX,
}


class EngineCache:
    """Process-local warm-evaluation state with bounded LRU eviction.

    Long-lived processes — the :mod:`repro.service` worker pool above
    all — repeatedly evaluate structurally identical netlists: every
    job of a locking sweep parses the same benchmark text, lowers it to
    the same generated source, and compiles the same chunk functions.
    This class makes that reuse an explicit, testable contract instead
    of an accident of module globals.  Two keyed pools:

    * **programs** — generated-source -> compiled chunk-function tuple,
      shared across structurally identical netlists and variant
      families with the same delta layout (absorbs the former
      ``_PROGRAM_MEMO`` module global);
    * **netlists** — caller-chosen string key (conventionally the
      transport digest of the serialized form) -> parsed
      :class:`~repro.netlist.Netlist`.  Each entry records the
      netlist's ``mutation_epoch`` at insertion; a lookup whose cached
      netlist has since been mutated in place is treated as a miss and
      dropped, so a stale structure is never served.

    Both pools are LRU-bounded and count hits/misses/evictions.  The
    cache is *process-local by design*: compiled code objects and
    parsed netlists are exactly the state that cannot travel across a
    pickle boundary, which is why warm workers hold one of these each
    (see ``scripts/check_jobs.py`` for the audit that job results never
    smuggle such handles out of a worker).
    """

    def __init__(self, max_programs: int = 64,
                 max_netlists: int = 32) -> None:
        self.max_programs = max_programs
        self.max_netlists = max_netlists
        self._programs: "Dict[str, tuple]" = {}
        self._netlists: Dict[str, Tuple[Netlist, int]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- generic LRU plumbing (dicts preserve insertion order) ---------

    @staticmethod
    def _touch(pool: dict, key: str) -> None:
        pool[key] = pool.pop(key)

    def _evict_to(self, pool: dict, limit: int) -> None:
        while len(pool) > limit:
            pool.pop(next(iter(pool)))
            self.evictions += 1

    # -- compiled programs ---------------------------------------------

    def program(self, sources: Sequence[str]) -> tuple:
        """Compiled chunk functions for the given generated sources.

        The joined source is a complete structural signature and the
        chunk functions close over nothing instance-specific, so any
        two netlists producing the same source share one program.
        """
        key = "\x00".join(sources)
        cached = self._programs.get(key)
        if cached is not None:
            self.hits += 1
            self._touch(self._programs, key)
            return cached
        self.misses += 1
        chunk_fns = []
        for source in sources:
            namespace: Dict[str, object] = {}
            exec(compile(source, "<compiled-netlist>", "exec"), namespace)
            chunk_fns.append(namespace["_c"])
        program = tuple(chunk_fns)
        self._programs[key] = program
        self._evict_to(self._programs, self.max_programs)
        return program

    # -- parsed netlists -----------------------------------------------

    def get_netlist(self, key: str) -> Optional[Netlist]:
        """Cached netlist for ``key``, or ``None``.

        Entries whose netlist was mutated in place since insertion
        (``mutation_epoch`` advanced) are dropped and reported as
        misses: callers treat cached netlists as read-only, and this
        guard turns a violation into a recompute instead of a wrong
        answer.
        """
        entry = self._netlists.get(key)
        if entry is None:
            self.misses += 1
            return None
        netlist, epoch = entry
        if netlist.mutation_epoch != epoch:
            del self._netlists[key]
            self.misses += 1
            return None
        self.hits += 1
        self._touch(self._netlists, key)
        return netlist

    def put_netlist(self, key: str, netlist: Netlist) -> Netlist:
        """Insert ``netlist`` under ``key``; returns it for chaining."""
        self._netlists[key] = (netlist, netlist.mutation_epoch)
        self._evict_to(self._netlists, self.max_netlists)
        return netlist

    def netlist(self, key: str, build) -> Netlist:
        """Cached netlist for ``key``, calling ``build()`` on a miss."""
        cached = self.get_netlist(key)
        if cached is not None:
            return cached
        return self.put_netlist(key, build())

    # -- introspection --------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Cache counters: entry counts, hits, misses, evictions."""
        return {
            "programs": len(self._programs),
            "netlists": len(self._netlists),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop every cached entry and reset the counters."""
        self._programs.clear()
        self._netlists.clear()
        self.hits = self.misses = self.evictions = 0


#: The process-local cache instance; created lazily so ``fork``-started
#: workers that clear it do not share state with the parent.
_ENGINE_CACHE: Optional[EngineCache] = None


def engine_cache() -> EngineCache:
    """The process-local :class:`EngineCache` singleton."""
    global _ENGINE_CACHE
    if _ENGINE_CACHE is None:
        _ENGINE_CACHE = EngineCache()
    return _ENGINE_CACHE


def reset_engine_cache() -> None:
    """Drop the process-local cache (tests; worker recycling)."""
    global _ENGINE_CACHE
    _ENGINE_CACHE = None


def _gate_expr(compiled: "CompiledNetlist", i: int, op: int, ref) -> str:
    """Generated-source expression for gate ``i`` evaluated as ``op``.

    Shared by the base program and the variant-family program (which
    may evaluate a site under a *patched* opcode, hence the explicit
    ``op``).  ``ref(j)`` renders a fanin reference.
    """
    fis = compiled.fanins[i]
    if op == OP_INPUT:
        return f"IN[{compiled._input_pos[compiled.names[i]]}] & mask"
    if op == OP_DFF:
        return f"ST[{compiled._flop_pos[compiled.names[i]]}] & mask"
    if op == OP_CONST0:
        return "0"
    if op == OP_CONST1:
        return "mask"
    if op == OP_BUF:
        return ref(fis[0])
    if op == OP_NOT:
        return f"~{ref(fis[0])} & mask"
    if op == OP_AND:
        return " & ".join(ref(fi) for fi in fis)
    if op == OP_NAND:
        return "~(" + " & ".join(ref(fi) for fi in fis) + ") & mask"
    if op == OP_OR:
        return " | ".join(ref(fi) for fi in fis)
    if op == OP_NOR:
        return "~(" + " | ".join(ref(fi) for fi in fis) + ") & mask"
    if op == OP_XOR:
        return " ^ ".join(ref(fi) for fi in fis)
    if op == OP_XNOR:
        return "~(" + " ^ ".join(ref(fi) for fi in fis) + ") & mask"
    # OP_MUX: (select, data0, data1)
    s, d0, d1 = (ref(fi) for fi in fis)
    return f"(~{s} & {d0}) | ({s} & {d1})"


def _compile_program(sources: Sequence[str]) -> tuple:
    """Compile chunk sources to functions via the process-local cache.

    Thin wrapper over :meth:`EngineCache.program` kept for the existing
    call sites; the memoization policy (LRU bound, counters) lives on
    the cache object.
    """
    return engine_cache().program(sources)


class CompiledNetlist:
    """A netlist lowered to a flat, integer-indexed gate program.

    Instances are immutable snapshots of one topology; obtain them via
    :func:`get_compiled`, which caches one per netlist and recompiles
    after any structural mutation.
    """

    __slots__ = (
        "netlist", "names", "index", "input_names", "flop_names",
        "opcodes", "fanins", "levels", "depth", "consumers", "flop_src",
        "_topo_ref", "_input_pos", "_flop_pos", "_fn", "_evals",
        "_family_seen", "_family_programs",
    )

    #: Bound on the per-topology cache of compiled family programs.
    _FAMILY_PROGRAM_MAX = 16

    def __init__(self, netlist: Netlist) -> None:
        order = netlist.topological_order()
        self.netlist = netlist
        self._topo_ref = order
        self.names: List[str] = list(order)
        self.index: Dict[str, int] = {n: i for i, n in enumerate(order)}
        self.input_names: List[str] = netlist.inputs
        self.flop_names: List[str] = netlist.flops
        self._input_pos = {n: i for i, n in enumerate(self.input_names)}
        self._flop_pos = {n: i for i, n in enumerate(self.flop_names)}

        gates = netlist.gates
        n = len(order)
        self.opcodes: List[int] = [0] * n
        self.fanins: List[Tuple[int, ...]] = [()] * n
        self.levels: List[int] = [0] * n
        # Combinational consumers only: fault effects and incremental
        # re-evaluation never propagate through a DFF within one cycle.
        self.consumers: List[List[int]] = [[] for _ in range(n)]
        for i, net in enumerate(order):
            g = gates[net]
            op = _OPCODE[g.gate_type]
            self.opcodes[i] = op
            fis = tuple(self.index[fi] for fi in g.fanins)
            self.fanins[i] = fis
            if op in (OP_INPUT, OP_DFF, OP_CONST0, OP_CONST1):
                self.levels[i] = 0
            else:
                self.levels[i] = 1 + max(self.levels[fi] for fi in fis)
                for fi in fis:
                    self.consumers[fi].append(i)
        self.depth = max(self.levels) if self.levels else 0
        # D-pin source index per flop, for fast sequential stepping
        # (:meth:`step_words`) without materializing name-keyed dicts.
        self.flop_src: List[int] = [
            self.index[gates[ff].fanins[0]] for ff in self.flop_names
        ]
        # Code generation is lazy: the first evaluation runs over the
        # opcode arrays directly, and the straight-line program is only
        # generated and compiled from the second evaluation on.  Repeat
        # consumers (trace campaigns, oracles) amortize the compile;
        # mutate-once-simulate-once patterns (fault injection sweeps,
        # DSE candidate scoring) never pay it.
        self._fn: Optional[tuple] = None
        self._evals = 0
        # Variant-family state, scoped to this topology: delta layouts
        # whose single interpreted warm-up has been spent, and compiled
        # family programs keyed by layout, so a consumer that builds a
        # fresh family per call (key sweeps, fault-campaign chunks)
        # still reaches generated code from its second call on.
        self._family_seen: set = set()
        self._family_programs: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Code generation
    # ------------------------------------------------------------------

    #: Statements per generated sub-function.  CPython's compiler goes
    #: superlinear on very large function bodies (~0.8 s at 8k
    #: statements vs ~0.08 s at 4k), so the program is split into
    #: chunks that each write their slice of a shared value list.
    CHUNK_STATEMENTS = 2000

    def _codegen(self):
        """Emit the gate program as chunked straight-line Python.

        Each chunk is one function ``_c(V, IN, ST, mask)`` holding its
        gates in fast locals and flushing them into the dense value
        list ``V`` with a single slice assignment; cross-chunk fanins
        read ``V[j]`` directly.  BUF gates are aliased away (their
        reference *is* the fanin's), so the generated body contains
        exactly one bitwise expression per logic cell.
        """
        n = len(self.names)
        # Resolve BUF chains to their driving root once.
        root = list(range(n))
        for i, op in enumerate(self.opcodes):
            if op == OP_BUF:
                root[i] = root[self.fanins[i][0]]

        sources = []
        start = 0
        while start < n or (n == 0 and start == 0):
            stop = min(n, start + self.CHUNK_STATEMENTS)

            def ref(j: int, _start=start) -> str:
                r = root[j]
                return f"v{r}" if r >= _start else f"V[{r}]"

            lines = ["def _c(V, IN, ST, mask):"]
            for i in range(start, stop):
                op = self.opcodes[i]
                if op == OP_BUF:
                    continue
                lines.append(f"    v{i} = {_gate_expr(self, i, op, ref)}")
            flush = ",".join(ref(i) for i in range(start, stop))
            lines.append(f"    V[{start}:{stop}] = [{flush}]")
            sources.append("\n".join(lines))
            start = stop
            if n == 0:
                break
        return _compile_program(sources)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval_words(self, inputs: Mapping[str, int], width: int = 1,
                   state: Optional[Mapping[str, int]] = None) -> List[int]:
        """Packed value of every net, indexed like :attr:`names`."""
        try:
            stim = [inputs[name] for name in self.input_names]
        except KeyError as missing:
            raise NetlistError(
                f"missing stimulus for input {missing.args[0]!r}") from None
        if state:
            regs = [state.get(ff, 0) for ff in self.flop_names]
        else:
            regs = [0] * len(self.flop_names)
        return self._run(stim, regs, (1 << width) - 1)

    def _run(self, stim: Sequence[int], regs: Sequence[int],
             mask: int) -> List[int]:
        """Evaluate with positional stimulus/state words (no name lookups)."""
        values: List[int] = [0] * len(self.names)
        if self._fn is None:
            if self._evals == 0:
                self._evals = 1
                self._interpret(values, stim, regs, mask)
                return values
            self._fn = self._codegen()
        for chunk in self._fn:
            chunk(values, stim, regs, mask)
        return values

    def step_words(self, stim: Sequence[int], regs: Sequence[int],
                   width: int = 1) -> Tuple[List[int], List[int]]:
        """One clock edge on positional words: ``(values, next_regs)``.

        ``stim`` is ordered like :attr:`input_names` and ``regs`` like
        :attr:`flop_names`; the returned next-state list can be fed
        straight back in.  This is the fast inner loop behind
        sequential stepping (scan chains, AES datapath cycles) — no
        name-keyed dicts are built per cycle.
        """
        values = self._run(stim, regs, (1 << width) - 1)
        return values, [values[src] for src in self.flop_src]

    def _interpret(self, values: List[int], stim: Sequence[int],
                   regs: Sequence[int], mask: int) -> None:
        """One full evaluation straight off the opcode arrays.

        Used for the first evaluation of a topology, before code
        generation has paid for itself.
        """
        value_of = values.__getitem__
        for i, op in enumerate(self.opcodes):
            if op == OP_INPUT:
                values[i] = stim[self._input_pos[self.names[i]]] & mask
            elif op == OP_DFF:
                values[i] = regs[self._flop_pos[self.names[i]]] & mask
            else:
                values[i] = self._eval_gate(i, value_of, mask)

    def simulate(self, inputs: Mapping[str, int], width: int = 1,
                 state: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
        """Drop-in replacement for the reference ``simulate()``."""
        return dict(zip(self.names, self.eval_words(inputs, width, state)))

    # ------------------------------------------------------------------
    # Incremental single-fault propagation
    # ------------------------------------------------------------------

    def _eval_gate(self, i: int, value_of, mask: int,
                   op: Optional[int] = None) -> int:
        """Interpreted evaluation of one gate.

        Used by the incremental (event-driven) path and, with an ``op``
        override, by :class:`VariantFamily` when a site is evaluated
        under a patched opcode.
        """
        if op is None:
            op = self.opcodes[i]
        fis = self.fanins[i]
        if op == OP_BUF:
            return value_of(fis[0])
        if op == OP_NOT:
            return ~value_of(fis[0]) & mask
        if op == OP_AND or op == OP_NAND:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out &= value_of(fi)
            return out if op == OP_AND else ~out & mask
        if op == OP_OR or op == OP_NOR:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out |= value_of(fi)
            return out if op == OP_OR else ~out & mask
        if op == OP_XOR or op == OP_XNOR:
            out = value_of(fis[0])
            for fi in fis[1:]:
                out ^= value_of(fi)
            return out if op == OP_XOR else ~out & mask
        if op == OP_MUX:
            s, d0, d1 = (value_of(fi) for fi in fis)
            return (~s & d0) | (s & d1)
        if op == OP_CONST0:
            return 0
        if op == OP_CONST1:
            return mask
        raise NetlistError("INPUT/DFF gates take values from the stimulus")

    def propagate_force(self, golden: Sequence[int], site: int,
                        forced: int, width: int) -> Dict[int, int]:
        """Net values that change when ``site`` is forced to ``forced``.

        ``golden`` is a fault-free :meth:`eval_words` result for the same
        stimulus.  Returns ``{net index: new packed value}`` for every
        net whose value differs from golden — the single-fault cone,
        computed event-driven in topological order without re-simulating
        or copying the netlist.  Effects stop at DFFs (state comes from
        the stimulus, exactly as in a flat ``simulate()`` call).
        """
        mask = (1 << width) - 1
        forced &= mask
        if forced == golden[site]:
            return {}
        changed: Dict[int, int] = {site: forced}

        def value_of(i: int, _changed=changed, _golden=golden):
            v = _changed.get(i)
            return _golden[i] if v is None else v

        heap = list(self.consumers[site])
        heapify(heap)
        queued = set(heap)
        while heap:
            i = heappop(heap)
            queued.discard(i)
            new = self._eval_gate(i, value_of, mask)
            if new != golden[i]:
                changed[i] = new
                for consumer in self.consumers[i]:
                    if consumer not in queued:
                        queued.add(consumer)
                        heappush(heap, consumer)
        return changed

    def fault_detects(self, golden: Sequence[int], site: int, forced: int,
                      output_indices: frozenset, width: int) -> bool:
        """True when forcing ``site`` flips some primary output pattern."""
        changed = self.propagate_force(golden, site, forced, width)
        return not output_indices.isdisjoint(changed)


def get_compiled(netlist: Netlist) -> CompiledNetlist:
    """The cached compiled program for ``netlist`` (recompiling if stale).

    Staleness is detected through the ``_topo_cache`` identity: every
    structural mutation in :class:`Netlist` invalidates the topo cache,
    and :meth:`Netlist.topological_order` builds a *new* list object on
    the next call, so an identity mismatch precisely captures
    "mutated since compilation".
    """
    cached = getattr(netlist, "_compiled", None)
    if cached is not None and cached._topo_ref is netlist._topo_cache:
        return cached
    compiled = CompiledNetlist(netlist)
    netlist._compiled = compiled
    return compiled


# ----------------------------------------------------------------------
# Batched multi-variant evaluation
# ----------------------------------------------------------------------

#: Opcodes that may not appear in an opcode delta (either side): their
#: value comes from the stimulus, not from evaluating fanins.
_UNPATCHABLE = (OP_INPUT, OP_DFF)


class VariantSpec:
    """Delta of one design variant against a shared base netlist.

    ``inputs``  — input name -> packed word overriding the shared
                  stimulus for this variant (locking-key values, share
                  assignments); masked to the trace width at eval time.
    ``forces``  — net name -> 0/1 stuck-at value.  Wins over ``flips``.
    ``flips``   — net names whose computed value is inverted (the
                  ``BIT_FLIP`` fault model).
    ``opcodes`` — gate name -> :class:`GateType` the site evaluates as
                  (patched cells, camouflage decoys); fanins unchanged.

    Specs are value objects with a canonical JSON form
    (:meth:`to_dict` / :meth:`from_dict`), so per-variant artifact-cache
    keys hash identically whether a variant is scored serially or as
    part of a batch.
    """

    __slots__ = ("inputs", "forces", "flips", "opcodes")

    def __init__(self, inputs: Optional[Mapping[str, int]] = None,
                 forces: Optional[Mapping[str, int]] = None,
                 flips: Iterable[str] = (),
                 opcodes: Optional[Mapping[str, Union[str, GateType]]] = None,
                 ) -> None:
        self.inputs: Dict[str, int] = {
            str(k): int(v) for k, v in dict(inputs or {}).items()}
        self.forces: Dict[str, int] = {
            str(k): (1 if v else 0) for k, v in dict(forces or {}).items()}
        self.flips: frozenset = frozenset(str(f) for f in flips)
        self.opcodes: Dict[str, GateType] = {
            str(k): (GateType[v] if isinstance(v, str) else GateType(v))
            for k, v in dict(opcodes or {}).items()}

    def is_identity(self) -> bool:
        """True for the no-delta variant (the base design itself)."""
        return not (self.inputs or self.forces or self.flips
                    or self.opcodes)

    def to_dict(self) -> Dict[str, object]:
        """Canonical, JSON-able form; stable under round trips."""
        return {
            "inputs": {k: self.inputs[k] for k in sorted(self.inputs)},
            "forces": {k: self.forces[k] for k in sorted(self.forces)},
            "flips": sorted(self.flips),
            "opcodes": {k: self.opcodes[k].name
                        for k in sorted(self.opcodes)},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "VariantSpec":
        return cls(inputs=data.get("inputs"),
                   forces=data.get("forces"),
                   flips=data.get("flips", ()),
                   opcodes=data.get("opcodes"))


class VariantFamily:
    """Many variants of one netlist, evaluated in a single packed pass.

    The base netlist is lowered **once** (through the ordinary
    :func:`get_compiled` cache) and the per-variant deltas are carried
    as extra bit-planes: with ``V`` variants at ``traces`` patterns
    each, every net holds a ``V * traces``-bit word in which variant
    ``v`` owns bits ``[v*traces, (v+1)*traces)``.  Shared stimulus is
    replicated into every slice with one multiply; input overrides,
    stuck-at forces, bit-flips and patched opcodes apply only inside
    their variant's slice.  One sweep therefore scores the whole
    family instead of ``V`` compile+simulate round trips, and the
    result of each slice is bit-identical to simulating that variant
    alone at width ``traces``.

    Structural deltas are compiled in: the generated program embeds
    *plane indices* (part of the program-memo key) while plane *values*
    are passed at call time, so families with the same delta layout
    share one compiled program across trace widths.
    """

    __slots__ = (
        "netlist", "variants", "_compiled", "_input_over", "_force_ix",
        "_flip_ix", "_alt_ix", "_plane_specs", "_planes_cache",
        "_layout", "_fn", "_evals",
    )

    #: Bound on the per-family ``traces -> plane values`` cache.
    _PLANES_CACHE_MAX = 8

    def __init__(self, netlist: Netlist,
                 variants: Iterable[Union[VariantSpec, Mapping]]) -> None:
        specs: List[VariantSpec] = [
            v if isinstance(v, VariantSpec) else VariantSpec.from_dict(v)
            for v in variants
        ]
        if not specs:
            raise NetlistError("a VariantFamily needs at least one variant")
        self.netlist = netlist
        self.variants = specs
        self._bind(get_compiled(netlist))

    def __len__(self) -> int:
        return len(self.variants)

    # ------------------------------------------------------------------
    # Delta-plane layout
    # ------------------------------------------------------------------

    @staticmethod
    def _site(index: Mapping[str, int], name: str) -> int:
        try:
            return index[name]
        except KeyError:
            raise NetlistError(
                f"variant delta names unknown net {name!r}") from None

    def _bind(self, compiled: CompiledNetlist) -> None:
        """(Re)build the delta-plane layout against a compiled base.

        Called at construction and again whenever the base netlist has
        been structurally mutated since (net indices may have moved).
        """
        self._compiled = compiled
        self._planes_cache: Dict[int, tuple] = {}
        self._fn = None
        self._evals = 0
        index = compiled.index
        opcodes = compiled.opcodes

        plane_specs: List[Tuple[bool, Tuple[int, ...]]] = []
        memo: Dict[Tuple[bool, Tuple[int, ...]], int] = {}

        def plane(variant_ids, invert: bool = False) -> int:
            key = (invert, tuple(sorted(variant_ids)))
            ix = memo.get(key)
            if ix is None:
                ix = memo[key] = len(plane_specs)
                plane_specs.append(key)
            return ix

        input_over: Dict[str, Dict[int, int]] = {}
        forces0: Dict[int, List[int]] = {}
        forces1: Dict[int, List[int]] = {}
        flips: Dict[int, List[int]] = {}
        alts: Dict[int, Dict[int, List[int]]] = {}
        for v, spec in enumerate(self.variants):
            for name, word in spec.inputs.items():
                if name not in compiled._input_pos:
                    raise NetlistError(
                        f"variant override target {name!r} is not an input")
                input_over.setdefault(name, {})[v] = word
            for name, val in spec.forces.items():
                site = self._site(index, name)
                (forces1 if val else forces0).setdefault(site, []).append(v)
            for name in spec.flips:
                flips.setdefault(self._site(index, name), []).append(v)
            for name, gate_type in spec.opcodes.items():
                site = self._site(index, name)
                op = _OPCODE[gate_type]
                if opcodes[site] in _UNPATCHABLE or op in _UNPATCHABLE:
                    raise NetlistError(
                        f"cannot patch opcode at {name!r}: INPUT/DFF "
                        "sites are stimulus-driven")
                n_fanins = len(compiled.fanins[site])
                if op == OP_MUX and n_fanins != 3:
                    raise NetlistError(
                        f"MUX patch at {name!r} needs 3 fanins, "
                        f"site has {n_fanins}")
                if op not in (OP_CONST0, OP_CONST1) and n_fanins < 1:
                    raise NetlistError(
                        f"opcode patch at {name!r} needs a fanin")
                if op == opcodes[site]:
                    continue  # patching to the base type is a no-op
                alts.setdefault(site, {}).setdefault(op, []).append(v)

        # site -> (keep-plane, set-plane): new = (v & keep) | set
        self._force_ix: Dict[int, Tuple[int, int]] = {}
        for site in sorted(set(forces0) | set(forces1)):
            affected = forces0.get(site, []) + forces1.get(site, [])
            self._force_ix[site] = (plane(affected, invert=True),
                                    plane(forces1.get(site, [])))
        # site -> xor-plane
        self._flip_ix: Dict[int, int] = {
            site: plane(variant_ids)
            for site, variant_ids in sorted(flips.items())
        }
        # site -> (base-keep-plane, ((opcode, select-plane), ...))
        self._alt_ix: Dict[int, Tuple[int, tuple]] = {}
        for site in sorted(alts):
            by_op = alts[site]
            patched = [v for vs in by_op.values() for v in vs]
            base_ix = plane(patched, invert=True)
            entries = tuple(sorted(
                (op, plane(vs)) for op, vs in by_op.items()))
            self._alt_ix[site] = (base_ix, entries)
        self._plane_specs = plane_specs
        self._input_over = input_over
        # The generated program depends only on which plane index wraps
        # which site (values arrive at call time), so this key
        # identifies the program across family instances on one
        # topology — input-override-only families all share the empty
        # layout, and repeated sweeps reuse one compiled program.
        self._layout = (
            tuple(sorted(self._force_ix.items())),
            tuple(sorted(self._flip_ix.items())),
            tuple(sorted(self._alt_ix.items())),
        )

    def _planes_for(self, traces: int) -> tuple:
        """``(rep, tmask, full, D)`` for a given per-variant width."""
        cached = self._planes_cache.get(traces)
        if cached is not None:
            return cached
        n_variants = len(self.variants)
        tmask = (1 << traces) - 1
        full = (1 << (n_variants * traces)) - 1
        rep = 0
        for v in range(n_variants):
            rep |= 1 << (v * traces)
        planes: List[int] = []
        for invert, variant_ids in self._plane_specs:
            word = 0
            for v in variant_ids:
                word |= tmask << (v * traces)
            planes.append(full ^ word if invert else word)
        entry = (rep, tmask, full, planes)
        if len(self._planes_cache) >= self._PLANES_CACHE_MAX:
            self._planes_cache.pop(next(iter(self._planes_cache)))
        self._planes_cache[traces] = entry
        return entry

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def eval_words(self, inputs: Mapping[str, int], traces: int = 1,
                   state: Optional[Mapping[str, int]] = None,
                   per_variant_inputs: Optional[
                       Mapping[str, Sequence[int]]] = None) -> List[int]:
        """Packed value of every net across all variants.

        ``inputs``/``state`` carry shared ``traces``-bit stimulus words,
        replicated into every variant's slice; ``per_variant_inputs``
        maps an input name to one ``traces``-bit word per variant.  An
        input may be omitted from ``inputs`` only if every variant
        overrides it.  The result is indexed like the base program's
        ``names``; use :meth:`split_word` to recover per-variant words.
        """
        compiled = get_compiled(self.netlist)
        if compiled is not self._compiled:
            self._bind(compiled)
        n_variants = len(self.variants)
        rep, tmask, full, planes = self._planes_for(traces)
        stim: List[int] = []
        for name in compiled.input_names:
            over = self._input_over.get(name)
            pv = (per_variant_inputs.get(name)
                  if per_variant_inputs else None)
            if over is None and pv is None:
                try:
                    base = inputs[name]
                except KeyError:
                    raise NetlistError(
                        f"missing stimulus for input {name!r}") from None
                stim.append((base & tmask) * rep)
                continue
            shared = inputs.get(name)
            if pv is not None and traces & 7 == 0:
                # Byte-wise assembly: one join instead of V shift-ORs
                # into an ever-growing accumulator (the loop below is
                # quadratic in the variant count).
                if len(pv) != n_variants:
                    raise NetlistError(
                        f"per-variant stimulus for input {name!r} has "
                        f"{len(pv)} words for {n_variants} variants")
                n_bytes = traces >> 3
                encoded: Dict[int, bytes] = {}
                parts: List[bytes] = []
                for value in pv:
                    part = encoded.get(value)
                    if part is None:
                        part = encoded[value] = (
                            int(value) & tmask).to_bytes(n_bytes, "little")
                    parts.append(part)
                stim.append(int.from_bytes(b"".join(parts), "little"))
                continue
            word = 0
            for v in range(n_variants):
                value = pv[v] if pv is not None else over.get(v, shared)
                if value is None:
                    raise NetlistError(
                        f"missing stimulus for input {name!r} "
                        f"(no override in variant {v})")
                word |= (int(value) & tmask) << (v * traces)
            stim.append(word)
        if state:
            regs = [(state.get(ff, 0) & tmask) * rep
                    for ff in compiled.flop_names]
        else:
            regs = [0] * len(compiled.flop_names)
        values: List[int] = [0] * len(compiled.names)
        if self._fn is None:
            program = compiled._family_programs.get(self._layout)
            if program is not None:
                self._fn = program
            elif self._evals == 0 and self._layout not in compiled._family_seen:
                # First-ever evaluation of this delta layout on this
                # topology: interpret once.  Single-shot families (one
                # fault-campaign chunk) never pay codegen; repeat
                # layouts graduate to a shared compiled program below.
                compiled._family_seen.add(self._layout)
                self._evals = 1
                self._interpret(values, stim, regs, full, planes)
                return values
            else:
                self._fn = self._codegen()
                if len(compiled._family_programs) >= compiled._FAMILY_PROGRAM_MAX:
                    compiled._family_programs.pop(
                        next(iter(compiled._family_programs)))
                compiled._family_programs[self._layout] = self._fn
        for chunk in self._fn:
            chunk(values, stim, regs, full, planes)
        return values

    def split_word(self, word: int, traces: int) -> List[int]:
        """Per-variant ``traces``-bit words of one packed value."""
        tmask = (1 << traces) - 1
        return [(word >> (v * traces)) & tmask
                for v in range(len(self.variants))]

    # ------------------------------------------------------------------
    # Lowering
    # ------------------------------------------------------------------

    def _codegen(self):
        """Chunked straight-line program with per-site delta wrapping.

        Identical to the base program except at delta sites, where the
        generated expression selects among patched opcodes and applies
        flip/force planes from the runtime list ``D``.  Delta order at
        one site: opcode select, then flip, then force (force wins).
        BUF aliasing stops at delta sites so their planes apply exactly
        once.
        """
        c = self._compiled
        n = len(c.names)
        delta = set(self._force_ix) | set(self._flip_ix) | set(self._alt_ix)
        root = list(range(n))
        for i, op in enumerate(c.opcodes):
            if op == OP_BUF and i not in delta:
                root[i] = root[c.fanins[i][0]]

        sources = []
        start = 0
        while start < n or (n == 0 and start == 0):
            stop = min(n, start + c.CHUNK_STATEMENTS)

            def ref(j: int, _start=start) -> str:
                r = root[j]
                return f"v{r}" if r >= _start else f"V[{r}]"

            lines = ["def _c(V, IN, ST, mask, D):"]
            for i in range(start, stop):
                op = c.opcodes[i]
                if op == OP_BUF and i not in delta:
                    continue
                alt = self._alt_ix.get(i)
                if alt is None:
                    expr = _gate_expr(c, i, op, ref)
                else:
                    base_ix, entries = alt
                    parts = [f"({_gate_expr(c, i, op, ref)}) & D[{base_ix}]"]
                    parts.extend(
                        f"({_gate_expr(c, i, alt_op, ref)}) & D[{mix}]"
                        for alt_op, mix in entries)
                    expr = " | ".join(parts)
                flip = self._flip_ix.get(i)
                if flip is not None:
                    expr = f"({expr}) ^ D[{flip}]"
                force = self._force_ix.get(i)
                if force is not None:
                    expr = f"(({expr}) & D[{force[0]}]) | D[{force[1]}]"
                lines.append(f"    v{i} = {expr}")
            flush = ",".join(ref(i) for i in range(start, stop))
            lines.append(f"    V[{start}:{stop}] = [{flush}]")
            sources.append("\n".join(lines))
            start = stop
            if n == 0:
                break
        return _compile_program(sources)

    def _interpret(self, values: List[int], stim: Sequence[int],
                   regs: Sequence[int], mask: int,
                   planes: Sequence[int]) -> None:
        """First-evaluation path straight off the opcode arrays."""
        c = self._compiled
        value_of = values.__getitem__
        for i, op in enumerate(c.opcodes):
            if op == OP_INPUT:
                value = stim[c._input_pos[c.names[i]]] & mask
            elif op == OP_DFF:
                value = regs[c._flop_pos[c.names[i]]] & mask
            else:
                alt = self._alt_ix.get(i)
                if alt is None:
                    value = c._eval_gate(i, value_of, mask)
                else:
                    base_ix, entries = alt
                    value = c._eval_gate(i, value_of, mask) & planes[base_ix]
                    for alt_op, mix in entries:
                        value |= (c._eval_gate(i, value_of, mask, alt_op)
                                  & planes[mix])
            flip = self._flip_ix.get(i)
            if flip is not None:
                value ^= planes[flip]
            force = self._force_ix.get(i)
            if force is not None:
                value = (value & planes[force[0]]) | planes[force[1]]
            values[i] = value
