"""PPA (power, performance, area) estimation for netlists.

Classical EDA is driven by these metrics (paper Sec. II-B); the secure
flow in :mod:`repro.core` reports them side by side with security
metrics.  Costs are in normalized units of a generic standard-cell
library (area in NAND2-equivalents, delay in ps, leakage in nW,
switching energy in fJ per output toggle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from .gates import GateType
from .netlist import Netlist


@dataclass(frozen=True)
class CellCost:
    """Per-cell cost record of the generic library."""

    area: float        # NAND2-equivalent units
    delay: float       # intrinsic delay, ps
    leakage: float     # static leakage, nW
    switch_energy: float  # dynamic energy per output transition, fJ


#: Generic technology cost table (roughly NanGate45-shaped ratios).
DEFAULT_COSTS: Dict[GateType, CellCost] = {
    GateType.INPUT: CellCost(0.0, 0.0, 0.0, 0.0),
    GateType.CONST0: CellCost(0.0, 0.0, 0.0, 0.0),
    GateType.CONST1: CellCost(0.0, 0.0, 0.0, 0.0),
    GateType.BUF: CellCost(1.0, 35.0, 0.5, 0.6),
    GateType.NOT: CellCost(0.7, 20.0, 0.4, 0.5),
    GateType.AND: CellCost(1.3, 45.0, 0.9, 1.0),
    GateType.NAND: CellCost(1.0, 30.0, 0.8, 0.9),
    GateType.OR: CellCost(1.3, 50.0, 0.9, 1.0),
    GateType.NOR: CellCost(1.0, 35.0, 0.8, 0.9),
    GateType.XOR: CellCost(2.2, 65.0, 1.6, 1.8),
    GateType.XNOR: CellCost(2.2, 65.0, 1.6, 1.8),
    GateType.MUX: CellCost(2.5, 60.0, 1.5, 1.7),
    GateType.DFF: CellCost(4.5, 90.0, 2.5, 3.0),
}

#: Extra area/delay per fanin beyond the second, for variadic cells.
_EXTRA_FANIN_AREA = 0.35
_EXTRA_FANIN_DELAY = 12.0


@dataclass
class PPAReport:
    """Aggregate PPA summary of one netlist."""

    area: float
    delay: float
    leakage_power: float
    switch_energy: float
    cell_count: int
    flop_count: int
    depth: int

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for reports and DSE objectives."""
        return {
            "area": self.area,
            "delay": self.delay,
            "leakage_power": self.leakage_power,
            "switch_energy": self.switch_energy,
            "cell_count": float(self.cell_count),
            "flop_count": float(self.flop_count),
            "depth": float(self.depth),
        }


def gate_area(gate_type: GateType, n_fanins: int,
              costs: Optional[Mapping[GateType, CellCost]] = None) -> float:
    costs = costs or DEFAULT_COSTS
    base = costs[gate_type].area
    extra = max(0, n_fanins - 2) * _EXTRA_FANIN_AREA
    return base + (extra if gate_type.is_combinational else 0.0)


def gate_delay(gate_type: GateType, n_fanins: int,
               costs: Optional[Mapping[GateType, CellCost]] = None) -> float:
    costs = costs or DEFAULT_COSTS
    base = costs[gate_type].delay
    extra = max(0, n_fanins - 2) * _EXTRA_FANIN_DELAY
    return base + (extra if gate_type.is_combinational else 0.0)


def area(netlist: Netlist,
         costs: Optional[Mapping[GateType, CellCost]] = None) -> float:
    """Total cell area in NAND2-equivalents."""
    return sum(
        gate_area(g.gate_type, len(g.fanins), costs)
        for g in netlist.gates.values()
    )


def arrival_times(netlist: Netlist,
                  costs: Optional[Mapping[GateType, CellCost]] = None,
                  input_arrivals: Optional[Mapping[str, float]] = None
                  ) -> Dict[str, float]:
    """Per-net worst arrival time (ps).

    Inputs and DFF outputs arrive at t=0 unless ``input_arrivals``
    overrides them — e.g. random-number-generator outputs that reach the
    logic late, the scenario of the paper's Fig. 2.
    """
    costs = costs or DEFAULT_COSTS
    input_arrivals = input_arrivals or {}
    at: Dict[str, float] = {}
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type.is_source or g.gate_type is GateType.DFF:
            at[net] = float(input_arrivals.get(net, 0.0))
        else:
            at[net] = (max(at[fi] for fi in g.fanins)
                       + gate_delay(g.gate_type, len(g.fanins), costs))
    return at


def critical_path_delay(netlist: Netlist,
                        costs: Optional[Mapping[GateType, CellCost]] = None
                        ) -> float:
    """Worst arrival over primary outputs and DFF D-pins (ps)."""
    at = arrival_times(netlist, costs)
    endpoints = list(netlist.outputs)
    endpoints.extend(netlist.gates[ff].fanins[0] for ff in netlist.flops)
    if not endpoints:
        return 0.0
    return max(at[e] for e in endpoints)


def leakage_power(netlist: Netlist,
                  costs: Optional[Mapping[GateType, CellCost]] = None) -> float:
    """Total static leakage (nW) over all cells."""
    costs = costs or DEFAULT_COSTS
    return sum(costs[g.gate_type].leakage for g in netlist.gates.values())


def count_by_type(netlist: Netlist) -> Dict[GateType, int]:
    """Histogram of gate types in the netlist."""
    counts: Dict[GateType, int] = {}
    for g in netlist.gates.values():
        counts[g.gate_type] = counts.get(g.gate_type, 0) + 1
    return counts


def ppa_report(netlist: Netlist,
               costs: Optional[Mapping[GateType, CellCost]] = None
               ) -> PPAReport:
    """Full PPA summary used by the flow and DSE engines."""
    costs = costs or DEFAULT_COSTS
    return PPAReport(
        area=area(netlist, costs),
        delay=critical_path_delay(netlist, costs),
        leakage_power=leakage_power(netlist, costs),
        switch_energy=sum(
            costs[g.gate_type].switch_energy for g in netlist.gates.values()
        ),
        cell_count=netlist.num_cells(),
        flop_count=len(netlist.flops),
        depth=netlist.depth(),
    )
