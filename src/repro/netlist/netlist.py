"""Gate-level netlist data structure.

A :class:`Netlist` is a named directed acyclic graph of gates (plus DFFs,
which break combinational cycles).  It is the shared substrate for every
security scheme in this repository: synthesis, side-channel simulation,
fault injection, locking, Trojan insertion, ATPG, and formal analysis all
operate on this one IR.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from .gates import GateType, check_arity


@dataclass
class Gate:
    """One cell instance: an output net name, a type, and fanin net names."""

    name: str
    gate_type: GateType
    fanins: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        check_arity(self.gate_type, len(self.fanins))


class NetlistError(Exception):
    """Raised for structurally invalid netlist operations."""


class Netlist:
    """A mutable gate-level circuit.

    Gates are addressed by the name of the net they drive (single-driver
    discipline).  Primary inputs are gates of type ``INPUT``; primary
    outputs are an ordered list of net names.  DFFs give the netlist
    sequential behaviour; the combinational core treats DFF outputs as
    pseudo-inputs and DFF D-pins as pseudo-outputs.
    """

    def __init__(self, name: str = "top") -> None:
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self.outputs: List[str] = []
        self._uid = itertools.count()
        self._epoch = 0
        self._topo_cache: Optional[List[str]] = None
        self._inputs_cache: Optional[List[str]] = None
        self._flops_cache: Optional[List[str]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_gate(self, name: str, gate_type: GateType,
                 fanins: Sequence[str] = ()) -> str:
        """Add a gate driving net ``name``; returns the net name."""
        if name in self.gates:
            raise NetlistError(f"net {name!r} already has a driver")
        self.gates[name] = Gate(name, gate_type, list(fanins))
        self.invalidate()
        return name

    def add_input(self, name: str) -> str:
        """Add a primary input named ``name``."""
        return self.add_gate(name, GateType.INPUT)

    def add_output(self, net: str) -> None:
        """Mark an existing net as a primary output."""
        if net not in self.gates:
            raise NetlistError(f"cannot mark unknown net {net!r} as output")
        self.outputs.append(net)
        # The output list shapes liveness (sweep_dangling) and any
        # cached analysis keyed on the mutation epoch, so this counts
        # as a structural mutation even though no gate changed.
        self.invalidate()

    def new_name(self, prefix: str = "n") -> str:
        """Return a fresh net name not present in the netlist."""
        while True:
            candidate = f"{prefix}{next(self._uid)}"
            if candidate not in self.gates:
                return candidate

    def add(self, gate_type: GateType, fanins: Sequence[str],
            prefix: str = "n") -> str:
        """Add a gate with an auto-generated name; returns the net name."""
        return self.add_gate(self.new_name(prefix), gate_type, fanins)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def inputs(self) -> List[str]:
        """Primary input names in insertion order.

        Cached (and invalidated alongside the topo cache): hot paths
        like trace packing read this per stimulus and must not rescan
        every gate each time.  A fresh list is returned so callers may
        mutate their copy freely.
        """
        if self._inputs_cache is None:
            self._inputs_cache = [g.name for g in self.gates.values()
                                  if g.gate_type is GateType.INPUT]
        return list(self._inputs_cache)

    @property
    def flops(self) -> List[str]:
        """DFF output net names in insertion order (cached like inputs)."""
        if self._flops_cache is None:
            self._flops_cache = [g.name for g in self.gates.values()
                                 if g.gate_type is GateType.DFF]
        return list(self._flops_cache)

    @property
    def is_sequential(self) -> bool:
        return any(g.gate_type is GateType.DFF for g in self.gates.values())

    def gate(self, net: str) -> Gate:
        """The driver of ``net`` (raises :class:`NetlistError` if unknown)."""
        try:
            return self.gates[net]
        except KeyError:
            raise NetlistError(f"unknown net {net!r}") from None

    def __contains__(self, net: str) -> bool:
        return net in self.gates

    def __len__(self) -> int:
        return len(self.gates)

    def num_cells(self) -> int:
        """Number of combinational cells (excludes inputs, constants, DFFs)."""
        return sum(
            1 for g in self.gates.values()
            if g.gate_type.is_combinational and not g.gate_type.is_source
        )

    def fanout_map(self) -> Dict[str, List[str]]:
        """Map each net to the list of gate names consuming it."""
        fanout: Dict[str, List[str]] = {net: [] for net in self.gates}
        for g in self.gates.values():
            for fi in g.fanins:
                if fi not in fanout:
                    raise NetlistError(
                        f"gate {g.name!r} references undriven net {fi!r}"
                    )
                fanout[fi].append(g.name)
        return fanout

    def validate(self) -> None:
        """Check single-driver discipline, arities, acyclicity, outputs."""
        for g in self.gates.values():
            check_arity(g.gate_type, len(g.fanins))
            for fi in g.fanins:
                if fi not in self.gates:
                    raise NetlistError(
                        f"gate {g.name!r} references undriven net {fi!r}"
                    )
        for out in self.outputs:
            if out not in self.gates:
                raise NetlistError(f"output {out!r} has no driver")
        self.topological_order()  # raises on combinational cycles

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Gate names in topological order (DFF outputs treated as sources).

        Raises :class:`NetlistError` on a combinational cycle.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indeg: Dict[str, int] = {}
        consumers: Dict[str, List[str]] = {net: [] for net in self.gates}
        for g in self.gates.values():
            if g.gate_type is GateType.DFF or g.gate_type.is_source:
                indeg[g.name] = 0
            else:
                indeg[g.name] = len(g.fanins)
                for fi in g.fanins:
                    consumers[fi].append(g.name)
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[str] = []
        while ready:
            net = ready.pop()
            order.append(net)
            for consumer in consumers[net]:
                indeg[consumer] -= 1
                if indeg[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            stuck = sorted(n for n, d in indeg.items() if d > 0)
            raise NetlistError(f"combinational cycle through {stuck[:5]}")
        self._topo_cache = order
        return order

    @property
    def mutation_epoch(self) -> int:
        """Monotonic counter bumped by every structural mutation.

        External analysis caches (topological order, PPA, leakage
        traces, the compiled simulation program — see
        :mod:`repro.flow.analysis`) key their entries on this value:
        a cached result is valid exactly while the epoch it was
        computed at matches the netlist's current epoch.
        """
        return self._epoch

    def invalidate(self) -> None:
        """Drop caches after in-place mutation of gates.

        Clears the topological order plus the derived input/flop name
        caches, and bumps :attr:`mutation_epoch` so external analysis
        caches keyed on the epoch drop their entries too.  The compiled
        simulation engine (:mod:`repro.netlist.engine`) keys its
        per-netlist cache on the identity of the topo list, so dropping
        it here also forces a recompile on the next simulation.
        """
        self._epoch += 1
        self._topo_cache = None
        self._inputs_cache = None
        self._flops_cache = None

    def transitive_fanin(self, nets: Iterable[str]) -> Set[str]:
        """All nets in the combinational fanin cone of ``nets`` (inclusive)."""
        seen: Set[str] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            g = self.gate(net)
            if g.gate_type is not GateType.DFF:
                stack.extend(g.fanins)
        return seen

    def transitive_fanout(self, nets: Iterable[str]) -> Set[str]:
        """All nets in the combinational fanout cone of ``nets`` (inclusive)."""
        fanout = self.fanout_map()
        seen: Set[str] = set()
        stack = list(nets)
        while stack:
            net = stack.pop()
            if net in seen:
                continue
            seen.add(net)
            for consumer in fanout[net]:
                if self.gate(consumer).gate_type is not GateType.DFF:
                    stack.append(consumer)
                else:
                    seen.add(consumer)
        return seen

    def levels(self) -> Dict[str, int]:
        """Logic level of each net (sources at 0)."""
        level: Dict[str, int] = {}
        for net in self.topological_order():
            g = self.gates[net]
            if g.gate_type.is_source or g.gate_type is GateType.DFF:
                level[net] = 0
            else:
                level[net] = 1 + max(level[fi] for fi in g.fanins)
        return level

    def depth(self) -> int:
        """Maximum logic level over all nets (0 for an empty netlist)."""
        lv = self.levels()
        return max(lv.values()) if lv else 0

    # ------------------------------------------------------------------
    # Mutation helpers
    # ------------------------------------------------------------------

    def replace_fanin(self, gate_name: str, old: str, new: str) -> None:
        """Rewire one fanin of ``gate_name`` from net ``old`` to ``new``."""
        g = self.gate(gate_name)
        if old not in g.fanins:
            raise NetlistError(f"{gate_name!r} has no fanin {old!r}")
        g.fanins = [new if fi == old else fi for fi in g.fanins]
        self.invalidate()

    def rewire_consumers(self, old: str, new: str,
                         keep_outputs: bool = False) -> None:
        """Redirect every consumer of ``old`` (and output markers) to ``new``."""
        for g in self.gates.values():
            if old in g.fanins:
                g.fanins = [new if fi == old else fi for fi in g.fanins]
        if not keep_outputs:
            self.outputs = [new if o == old else o for o in self.outputs]
        self.invalidate()

    def remove_gate(self, net: str) -> None:
        """Remove the driver of ``net``; it must have no remaining consumers."""
        fanout = self.fanout_map()
        if fanout[net]:
            raise NetlistError(
                f"cannot remove {net!r}: still consumed by {fanout[net][:3]}"
            )
        if net in self.outputs:
            raise NetlistError(f"cannot remove primary output {net!r}")
        del self.gates[net]
        self.invalidate()

    def sweep_dangling(self) -> int:
        """Remove gates driving nothing (not outputs, not consumed). Returns count."""
        removed = 0
        while True:
            fanout = self.fanout_map()
            dead = [
                net for net, consumers in fanout.items()
                if not consumers and net not in self.outputs
                and self.gates[net].gate_type is not GateType.INPUT
            ]
            if not dead:
                return removed
            for net in dead:
                del self.gates[net]
                removed += 1
            self.invalidate()

    # ------------------------------------------------------------------
    # Copy / compose
    # ------------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "Netlist":
        """Deep copy of the netlist (optionally renamed)."""
        dup = Netlist(name or self.name)
        for g in self.gates.values():
            dup.gates[g.name] = Gate(g.name, g.gate_type, list(g.fanins))
        dup.outputs = list(self.outputs)
        return dup

    def import_netlist(self, other: "Netlist", prefix: str,
                       port_map: Dict[str, str]) -> Dict[str, str]:
        """Instantiate ``other`` inside this netlist.

        ``port_map`` maps ``other``'s primary-input names to existing nets
        here.  Internal nets are renamed ``{prefix}{net}``.  Returns the
        mapping from ``other``'s net names to names in this netlist
        (useful for locating the instantiated outputs).
        """
        rename: Dict[str, str] = {}
        for g in other.gates.values():
            if g.gate_type is GateType.INPUT:
                if g.name not in port_map:
                    raise NetlistError(f"unbound input {g.name!r}")
                rename[g.name] = port_map[g.name]
            else:
                rename[g.name] = f"{prefix}{g.name}"
        for net in other.topological_order():
            g = other.gates[net]
            if g.gate_type is GateType.INPUT:
                continue
            self.add_gate(rename[net], g.gate_type,
                          [rename[fi] for fi in g.fanins])
        return rename

    def __repr__(self) -> str:
        return (
            f"Netlist({self.name!r}, inputs={len(self.inputs)}, "
            f"outputs={len(self.outputs)}, cells={self.num_cells()}, "
            f"flops={len(self.flops)})"
        )


def cone_extract(netlist: Netlist, output: str,
                 name: Optional[str] = None) -> Netlist:
    """Extract the single-output combinational cone feeding ``output``."""
    keep = netlist.transitive_fanin([output])
    cone = Netlist(name or f"{netlist.name}_cone_{output}")
    for net in netlist.topological_order():
        if net not in keep:
            continue
        g = netlist.gates[net]
        if g.gate_type is GateType.DFF:
            cone.add_input(net)
        else:
            cone.add_gate(net, g.gate_type, list(g.fanins))
    cone.add_output(output)
    return cone
