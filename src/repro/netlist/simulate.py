"""Bit-parallel logic simulation.

Signal values are Python integers holding ``width`` independent patterns,
one per bit position.  A single levelized pass therefore simulates the
whole pattern set — this is the workhorse behind fault simulation, SCA
trace generation, SAT-attack oracles, and Trojan activation studies.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .engine import get_compiled
from .gates import GateType, evaluate
from .netlist import Netlist, NetlistError


def simulate(netlist: Netlist, inputs: Mapping[str, int],
             width: int = 1,
             state: Optional[Mapping[str, int]] = None) -> Dict[str, int]:
    """Evaluate every net for ``width`` packed input patterns.

    ``inputs`` maps each primary-input name to a packed word; ``state``
    optionally maps DFF output names to their current packed values
    (defaulting to 0).  Returns the packed value of *every* net.

    Evaluation runs on the compiled engine
    (:mod:`repro.netlist.engine`): the netlist is lowered once into a
    flat gate program and re-used until the next structural mutation.
    Results are bit-exact with :func:`simulate_reference`.
    """
    return get_compiled(netlist).simulate(inputs, width, state)


def simulate_reference(netlist: Netlist, inputs: Mapping[str, int],
                       width: int = 1,
                       state: Optional[Mapping[str, int]] = None
                       ) -> Dict[str, int]:
    """Interpreted reference semantics of :func:`simulate`.

    Kept as the executable specification the compiled engine is
    property-tested against; prefer :func:`simulate` everywhere else.
    """
    mask = (1 << width) - 1
    values: Dict[str, int] = {}
    state = state or {}
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type is GateType.INPUT:
            try:
                values[net] = inputs[net] & mask
            except KeyError:
                raise NetlistError(f"missing stimulus for input {net!r}") from None
        elif g.gate_type is GateType.DFF:
            values[net] = state.get(net, 0) & mask
        else:
            values[net] = evaluate(
                g.gate_type, [values[fi] for fi in g.fanins], mask
            )
    return values


def output_values(netlist: Netlist, inputs: Mapping[str, int],
                  width: int = 1) -> Dict[str, int]:
    """Like :func:`simulate` but returning only primary outputs."""
    values = simulate(netlist, inputs, width)
    return {o: values[o] for o in netlist.outputs}


def step_sequential(netlist: Netlist, inputs: Mapping[str, int],
                    state: Mapping[str, int],
                    width: int = 1) -> Tuple[Dict[str, int], Dict[str, int]]:
    """One clock cycle: returns (all net values, next DFF state)."""
    values = simulate(netlist, inputs, width, state)
    mask = (1 << width) - 1
    next_state = {
        ff: values[netlist.gates[ff].fanins[0]] & mask
        for ff in netlist.flops
    }
    return values, next_state


def run_sequential(netlist: Netlist,
                   input_sequence: Sequence[Mapping[str, int]],
                   initial_state: Optional[Mapping[str, int]] = None,
                   width: int = 1) -> List[Dict[str, int]]:
    """Simulate a cycle-by-cycle stimulus; returns per-cycle output values."""
    state: Dict[str, int] = dict(initial_state or {})
    trace: List[Dict[str, int]] = []
    for cycle_inputs in input_sequence:
        values, state = step_sequential(netlist, cycle_inputs, state, width)
        trace.append({o: values[o] for o in netlist.outputs})
    return trace


def pack_patterns(patterns: Sequence[Mapping[str, int]],
                  input_names: Sequence[str]) -> Dict[str, int]:
    """Pack single-bit pattern dicts into bit-parallel stimulus words."""
    packed = {name: 0 for name in input_names}
    for position, pattern in enumerate(patterns):
        for name in input_names:
            if pattern.get(name, 0) & 1:
                packed[name] |= 1 << position
    return packed


def unpack_word(word: int, width: int) -> List[int]:
    """Split a packed word back into ``width`` single-bit values."""
    return [(word >> i) & 1 for i in range(width)]


def random_stimulus(input_names: Sequence[str], width: int,
                    rng: Optional[random.Random] = None) -> Dict[str, int]:
    """Uniformly random packed stimulus for the given inputs."""
    rng = rng or random.Random()
    return {name: rng.getrandbits(width) for name in input_names}


def encode_int(value: int, bit_names: Sequence[str],
               width: int = 1) -> Dict[str, int]:
    """Spread an integer over named bit nets (LSB first), replicated
    across all ``width`` patterns."""
    mask = (1 << width) - 1
    return {
        name: mask if (value >> i) & 1 else 0
        for i, name in enumerate(bit_names)
    }


def decode_int(values: Mapping[str, int], bit_names: Sequence[str],
               pattern: int = 0) -> int:
    """Collect named bit nets (LSB first) into an integer for one pattern."""
    out = 0
    for i, name in enumerate(bit_names):
        out |= ((values[name] >> pattern) & 1) << i
    return out


def toggle_counts(netlist: Netlist,
                  stimulus: Sequence[Mapping[str, int]],
                  width: int = 1) -> List[Dict[str, int]]:
    """Per-transition toggle activity of every net.

    For consecutive stimulus vectors, counts — per net — how many of the
    packed patterns toggled.  This is the switching-activity basis of the
    gate-level power model used for SCA and IDDQ analyses.
    """
    if len(stimulus) < 2:
        return []
    compiled = get_compiled(netlist)
    names = compiled.names
    previous = compiled.eval_words(stimulus[0], width)
    transitions: List[Dict[str, int]] = []
    for vec in stimulus[1:]:
        current = compiled.eval_words(vec, width)
        transitions.append({
            net: (before ^ after).bit_count()
            for net, before, after in zip(names, previous, current)
        })
        previous = current
    return transitions


def exhaustive_truth_table(netlist: Netlist,
                           output: Optional[str] = None) -> List[int]:
    """Truth table of a small combinational netlist (<= 20 inputs).

    Returns, for each input minterm (inputs ordered as
    ``netlist.inputs``, LSB = first input), the value of ``output``
    (default: the first primary output).
    """
    names = netlist.inputs
    n = len(names)
    if n > 20:
        raise NetlistError(f"{n} inputs is too many for exhaustive tabling")
    target = output or netlist.outputs[0]
    width = 1 << n
    # Walsh-style packed stimulus: input i alternates with period 2**i.
    stimulus: Dict[str, int] = {}
    for i, name in enumerate(names):
        block = (1 << (1 << i)) - 1
        word = 0
        period = 1 << (i + 1)
        for start in range(1 << i, width, period):
            word |= block << start
        stimulus[name] = word
    values = simulate(netlist, stimulus, width)
    word = values[target]
    return [(word >> m) & 1 for m in range(width)]
