"""Benchmark circuit generators.

These supply the shared workloads for every experiment: arithmetic blocks
(the paper's PPA-driven flow of Fig. 1), the ISCAS c17 sample, parity and
comparator trees, random DAGs for statistical studies, and a generic
truth-table synthesizer used to build cryptographic S-box netlists.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .gates import GateType
from .netlist import Netlist


def c17() -> Netlist:
    """The ISCAS-85 c17 benchmark (6 NAND gates)."""
    n = Netlist("c17")
    for name in ("G1", "G2", "G3", "G6", "G7"):
        n.add_input(name)
    n.add_gate("G10", GateType.NAND, ["G1", "G3"])
    n.add_gate("G11", GateType.NAND, ["G3", "G6"])
    n.add_gate("G16", GateType.NAND, ["G2", "G11"])
    n.add_gate("G19", GateType.NAND, ["G11", "G7"])
    n.add_gate("G22", GateType.NAND, ["G10", "G16"])
    n.add_gate("G23", GateType.NAND, ["G16", "G19"])
    n.add_output("G22")
    n.add_output("G23")
    return n


def full_adder(netlist: Netlist, a: str, b: str, cin: str,
               prefix: str) -> Tuple[str, str]:
    """Instantiate a full adder; returns (sum, carry) net names."""
    axb = netlist.add_gate(f"{prefix}_axb", GateType.XOR, [a, b])
    s = netlist.add_gate(f"{prefix}_s", GateType.XOR, [axb, cin])
    ab = netlist.add_gate(f"{prefix}_ab", GateType.AND, [a, b])
    cx = netlist.add_gate(f"{prefix}_cx", GateType.AND, [axb, cin])
    cout = netlist.add_gate(f"{prefix}_co", GateType.OR, [ab, cx])
    return s, cout


def ripple_carry_adder(width: int, with_cin: bool = False) -> Netlist:
    """``width``-bit ripple-carry adder: inputs a*/b* (LSB first),
    outputs s0..s{width-1} and cout."""
    n = Netlist(f"rca{width}")
    a = [n.add_input(f"a{i}") for i in range(width)]
    b = [n.add_input(f"b{i}") for i in range(width)]
    carry = n.add_input("cin") if with_cin else n.add_gate("cin", GateType.CONST0)
    for i in range(width):
        s, carry = full_adder(n, a[i], b[i], carry, f"fa{i}")
        n.add_gate(f"s{i}", GateType.BUF, [s])
        n.add_output(f"s{i}")
    n.add_gate("cout", GateType.BUF, [carry])
    n.add_output("cout")
    return n


def array_multiplier(width: int) -> Netlist:
    """``width`` x ``width`` unsigned array multiplier, 2*width product bits."""
    n = Netlist(f"mult{width}")
    a = [n.add_input(f"a{i}") for i in range(width)]
    b = [n.add_input(f"b{i}") for i in range(width)]
    zero = n.add_gate("zero", GateType.CONST0)
    # Partial products pp[i][j] = a[j] & b[i].
    rows: List[List[str]] = []
    for i in range(width):
        rows.append([
            n.add_gate(f"pp_{i}_{j}", GateType.AND, [a[j], b[i]])
            for j in range(width)
        ])
    product: List[str] = []
    acc = rows[0] + [zero]
    product.append(acc[0])
    for i in range(1, width):
        shifted = acc[1:] + [zero]
        carry = zero
        new_acc: List[str] = []
        for j in range(width):
            s, carry = full_adder(n, shifted[j], rows[i][j], carry,
                                  f"fa_{i}_{j}")
            new_acc.append(s)
        new_acc.append(carry)
        acc = new_acc
        product.append(acc[0])
    product.extend(acc[1:])
    for k, net in enumerate(product[:2 * width]):
        n.add_gate(f"p{k}", GateType.BUF, [net])
        n.add_output(f"p{k}")
    return n


def equality_comparator(width: int) -> Netlist:
    """Outputs eq=1 iff a == b over ``width`` bits."""
    n = Netlist(f"eq{width}")
    bits = [
        n.add_gate(f"x{i}", GateType.XNOR,
                   [n.add_input(f"a{i}"), n.add_input(f"b{i}")])
        for i in range(width)
    ]
    if width == 1:
        n.add_gate("eq", GateType.BUF, [bits[0]])
    else:
        n.add_gate("eq", GateType.AND, bits)
    n.add_output("eq")
    return n


def parity_tree(width: int, balanced: bool = True) -> Netlist:
    """XOR parity over ``width`` inputs, as a balanced tree or a chain.

    The chain form preserves left-to-right evaluation order, which
    matters for the private-circuit experiments (Fig. 2 of the paper).
    """
    n = Netlist(f"parity{width}")
    nets = [n.add_input(f"x{i}") for i in range(width)]
    if width == 1:
        n.add_gate("p", GateType.BUF, nets)
        n.add_output("p")
        return n
    if balanced:
        layer = 0
        while len(nets) > 1:
            nxt = []
            for k in range(0, len(nets) - 1, 2):
                nxt.append(n.add_gate(f"t{layer}_{k}", GateType.XOR,
                                      [nets[k], nets[k + 1]]))
            if len(nets) % 2:
                nxt.append(nets[-1])
            nets = nxt
            layer += 1
    else:
        acc = nets[0]
        for k, net in enumerate(nets[1:]):
            acc = n.add_gate(f"t{k}", GateType.XOR, [acc, net])
        nets = [acc]
    n.add_gate("p", GateType.BUF, [nets[0]])
    n.add_output("p")
    return n


_RANDOM_TYPES = (
    GateType.AND, GateType.NAND, GateType.OR,
    GateType.NOR, GateType.XOR, GateType.XNOR, GateType.NOT,
)


def random_circuit(n_inputs: int, n_gates: int, n_outputs: int,
                   seed: int = 0) -> Netlist:
    """Random combinational DAG; reproducible for a given ``seed``.

    Gates prefer recent nets as fanins, producing deep, connected logic
    rather than a flat layer — a reasonable stand-in for 'random
    glue logic' in statistical experiments.
    """
    rng = random.Random(seed)
    n = Netlist(f"rand_{n_inputs}_{n_gates}_s{seed}")
    nets = [n.add_input(f"in{i}") for i in range(n_inputs)]
    for k in range(n_gates):
        gate_type = rng.choice(_RANDOM_TYPES)
        arity = 1 if gate_type is GateType.NOT else 2
        # Bias toward recent nets to build depth.
        pool_size = len(nets)
        fanins = []
        while len(fanins) < arity:
            idx = min(pool_size - 1,
                      int(rng.expovariate(1.0 / max(4, pool_size / 4))))
            candidate = nets[pool_size - 1 - idx]
            if candidate not in fanins:
                fanins.append(candidate)
        nets.append(n.add_gate(f"g{k}", gate_type, fanins))
    chosen = rng.sample(nets[n_inputs:], min(n_outputs, n_gates))
    for j, net in enumerate(chosen):
        n.add_gate(f"out{j}", GateType.BUF, [net])
        n.add_output(f"out{j}")
    return n


def from_truth_tables(n_inputs: int, tables: Mapping[str, Sequence[int]],
                      name: str = "lut",
                      input_names: Optional[Sequence[str]] = None) -> Netlist:
    """Synthesize a multi-output function from truth tables.

    ``tables`` maps output names to 2**n_inputs entries (minterm order,
    input 0 = LSB).  Uses Shannon decomposition into a MUX tree with
    memoized cofactors, so shared sub-functions across outputs are built
    once.  This is how the AES/PRESENT S-box netlists are produced.
    """
    size = 1 << n_inputs
    for out, table in tables.items():
        if len(table) != size:
            raise ValueError(
                f"table for {out!r} has {len(table)} entries, wants {size}"
            )
    n = Netlist(name)
    names = list(input_names) if input_names else [
        f"x{i}" for i in range(n_inputs)
    ]
    inputs = [n.add_input(nm) for nm in names]
    const0 = n.add_gate("const0", GateType.CONST0)
    const1 = n.add_gate("const1", GateType.CONST1)
    memo: Dict[Tuple[int, ...], str] = {}
    inverted: Dict[str, str] = {}

    def invert(net: str) -> str:
        if net not in inverted:
            inverted[net] = n.add(GateType.NOT, [net], prefix="inv")
        return inverted[net]

    def build(table: Tuple[int, ...], var: int) -> str:
        key = table
        if key in memo:
            return memo[key]
        if all(v == 0 for v in table):
            memo[key] = const0
            return const0
        if all(v == 1 for v in table):
            memo[key] = const1
            return const1
        if len(table) == 2:
            net = inputs[var] if table == (0, 1) else invert(inputs[var])
            memo[key] = net
            return net
        half = len(table) // 2
        # Split on the *top* variable of this sub-table: minterm order
        # means the low half is var=0 and the high half var=1.
        top = var + (len(table).bit_length() - 2)
        f0 = build(tuple(table[:half]), var)
        f1 = build(tuple(table[half:]), var)
        if f0 == f1:
            memo[key] = f0
            return f0
        net = n.add(GateType.MUX, [inputs[top], f0, f1], prefix="m")
        memo[key] = net
        return net

    for out, table in tables.items():
        root = build(tuple(int(v) & 1 for v in table), 0)
        n.add_gate(out, GateType.BUF, [root])
        n.add_output(out)
    n.sweep_dangling()
    return n


def from_truth_table(n_inputs: int, table: Sequence[int],
                     name: str = "lut") -> Netlist:
    """Single-output convenience wrapper for :func:`from_truth_tables`."""
    return from_truth_tables(n_inputs, {"f": table}, name=name)
