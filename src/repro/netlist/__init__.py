"""Gate-level netlist substrate: IR, simulation, BENCH I/O, generators, PPA."""

from .gates import GateType, evaluate, check_arity
from .netlist import Gate, Netlist, NetlistError, cone_extract
from .engine import (
    CompiledNetlist,
    EngineCache,
    VariantFamily,
    VariantSpec,
    engine_cache,
    get_compiled,
    reset_engine_cache,
)
from .simulate import (
    simulate,
    simulate_reference,
    output_values,
    step_sequential,
    run_sequential,
    pack_patterns,
    unpack_word,
    random_stimulus,
    encode_int,
    decode_int,
    toggle_counts,
    exhaustive_truth_table,
)
from .bench import load, loads, dump, dumps
from .serialize import (
    canonical_form,
    canonical_json,
    dumps_netlist,
    loads_netlist,
    netlist_from_dict,
    netlist_hash,
    netlist_to_dict,
    stable_hash,
    transport_hash,
)
from .generators import (
    c17,
    full_adder,
    ripple_carry_adder,
    array_multiplier,
    equality_comparator,
    parity_tree,
    random_circuit,
    from_truth_table,
    from_truth_tables,
)
from .verilog import (
    dump_verilog,
    dumps_verilog,
    load_verilog,
    loads_verilog,
)
from .metrics import (
    CellCost,
    DEFAULT_COSTS,
    PPAReport,
    area,
    arrival_times,
    critical_path_delay,
    leakage_power,
    count_by_type,
    ppa_report,
)

__all__ = [
    "GateType", "evaluate", "check_arity",
    "Gate", "Netlist", "NetlistError", "cone_extract",
    "CompiledNetlist", "EngineCache", "VariantFamily", "VariantSpec",
    "engine_cache", "get_compiled", "reset_engine_cache",
    "simulate", "simulate_reference",
    "output_values", "step_sequential", "run_sequential",
    "pack_patterns", "unpack_word", "random_stimulus",
    "encode_int", "decode_int", "toggle_counts", "exhaustive_truth_table",
    "load", "loads", "dump", "dumps",
    "canonical_form", "canonical_json", "dumps_netlist", "loads_netlist",
    "netlist_from_dict", "netlist_hash", "netlist_to_dict", "stable_hash",
    "transport_hash",
    "dump_verilog", "dumps_verilog", "load_verilog", "loads_verilog",
    "c17", "full_adder", "ripple_carry_adder", "array_multiplier",
    "equality_comparator", "parity_tree", "random_circuit",
    "from_truth_table", "from_truth_tables",
    "CellCost", "DEFAULT_COSTS", "PPAReport", "area", "arrival_times",
    "critical_path_delay", "leakage_power", "count_by_type", "ppa_report",
]
