"""Content-addressed on-disk artifact store.

Every expensive flow result — a locking-sweep point, a composition
cross-effect row, a serialized netlist, a :class:`~repro.flow.manager.
FlowTrace` dict — is an *artifact*, addressed by the SHA-256 digest of
what produced it: ``(input netlist hash, pipeline/params hash, seed)``.
Re-running an identical flow in any later process, on any worker, is a
store hit instead of a recomputation.

Layout: artifacts live under ``root/<digest[:2]>/<digest[2:]>.json`` —
sharded by the first byte so no directory grows unboundedly.  Writes
are atomic (``os.replace`` of a same-directory temp file), so
concurrent workers racing to publish the same artifact are harmless:
last writer wins with identical content.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from ..netlist import (
    Netlist,
    netlist_from_dict,
    netlist_to_dict,
    stable_hash,
    transport_hash,
)


def result_key(input_hash: str, pipeline_hash: str, seed: int) -> str:
    """Digest addressing one flow result.

    ``input_hash`` is a structural netlist digest (or another
    artifact's digest), ``pipeline_hash`` a :func:`~repro.netlist.
    stable_hash` of the job/pipeline spec, ``seed`` the run seed —
    together the complete causal key of a deterministic flow result.
    """
    return stable_hash({"input": input_hash, "pipeline": pipeline_hash,
                        "seed": seed})


class ArtifactStore:
    """Sharded, content-addressed JSON artifact store.

    ``hits`` / ``misses`` count :meth:`get` traffic in this process;
    the authoritative cross-process record is the run database.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    # -- addressing ----------------------------------------------------

    def _path(self, digest: str) -> Path:
        if len(digest) < 3:
            raise ValueError(f"digest too short: {digest!r}")
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    # -- generic JSON artifacts ----------------------------------------

    def put(self, digest: str, payload: Dict[str, object]) -> Path:
        """Atomically persist ``payload`` under ``digest``."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Payload stored under ``digest``, or ``None`` (counted)."""
        path = self._path(digest)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            # A torn read can only happen for a file that exists but is
            # mid-publish from another worker; treat it as a miss — the
            # recomputation republishes identical content.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    # -- netlists ------------------------------------------------------

    def put_netlist(self, netlist: Netlist) -> str:
        """Persist a netlist; returns its transport digest.

        Content-addressed by :func:`~repro.netlist.transport_hash`,
        which *includes* gate insertion order: the stored payload
        preserves that order (seeded site enumeration walks it), so
        the digest must too — otherwise two structurally identical
        netlists built in different orders would share one artifact
        and the second client's jobs would silently run against the
        first writer's ordering.  Any worker that loads the artifact
        reproduces seeded transforms bit-exactly.
        """
        digest = transport_hash(netlist)
        if digest not in self:
            self.put(digest, netlist_to_dict(netlist))
        return digest

    def get_netlist(self, digest: str) -> Optional[Netlist]:
        """Load a netlist artifact back into a :class:`Netlist`."""
        payload = self.get(digest)
        if payload is None:
            return None
        return netlist_from_dict(payload)

    # -- introspection -------------------------------------------------

    def digests(self) -> Iterator[str]:
        """All artifact digests currently in the store."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for path in sorted(shard.iterdir()):
                if path.suffix == ".json":
                    yield shard.name + path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def __bool__(self) -> bool:
        # An empty store is still a store: without this, ``__len__``
        # makes ``if store:`` false on first use and optional-store
        # call sites silently skip the cache.
        return True

    def total_bytes(self) -> int:
        """Bytes on disk across all artifacts."""
        return sum(
            self._path(d).stat().st_size for d in self.digests())

    def __repr__(self) -> str:
        return (f"ArtifactStore({str(self.root)!r}, "
                f"artifacts={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
