"""Content-addressed on-disk artifact store.

Every expensive flow result — a locking-sweep point, a composition
cross-effect row, a serialized netlist, a :class:`~repro.flow.manager.
FlowTrace` dict — is an *artifact*, addressed by the SHA-256 digest of
what produced it: ``(input netlist hash, pipeline/params hash, seed)``.
Re-running an identical flow in any later process, on any worker, is a
store hit instead of a recomputation.

Layout: artifacts live under ``root/<digest[:2]>/<digest[2:]>.json`` —
sharded by the first byte so no directory grows unboundedly.  Writes
are atomic (``os.replace`` of a same-directory temp file) and
*idempotent*: content addressing means a digest that already exists
needs no second write, so concurrent multi-writer publication is
lock-free — racers either skip (digest present) or replace with
identical bytes.

Lifecycle: artifacts can be **pinned** under named references
(``pin``/``unpin`` — ref-counted via files in ``root/.pins/``, so
pinning is also lock-free and multi-process safe), and the store can
be **garbage-collected** (:meth:`ArtifactStore.gc`): a mark-and-sweep
from the pinned roots, following digest references embedded in
artifact payloads, that removes everything unreachable — except
artifacts younger than a grace window, which protects results that a
live campaign has published but not yet pinned or referenced.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Set, Union

from ..netlist import (
    Netlist,
    netlist_from_dict,
    netlist_to_dict,
    stable_hash,
    transport_hash,
)


def result_key(input_hash: str, pipeline_hash: str, seed: int) -> str:
    """Digest addressing one flow result.

    ``input_hash`` is a structural netlist digest (or another
    artifact's digest), ``pipeline_hash`` a :func:`~repro.netlist.
    stable_hash` of the job/pipeline spec, ``seed`` the run seed —
    together the complete causal key of a deterministic flow result.
    """
    return stable_hash({"input": input_hash, "pipeline": pipeline_hash,
                        "seed": seed})


#: Anything that looks like a store digest inside a payload: the JSON
#: scan treats these as references for the garbage collector's mark
#: phase.  SHA-256 hex, the store's native address format.
_DIGEST_RE = re.compile(r"\A[0-9a-f]{64}\Z")


def validate_digest(digest: str) -> str:
    """Return ``digest`` if it is a well-formed store address.

    Digests arrive from untrusted places — CLI arguments, gateway URL
    paths — and are spliced into filesystem paths, so syntax is
    enforced *before* any path construction: exactly 64 lowercase hex
    characters (SHA-256), nothing traversal-shaped can pass.  Raises
    :class:`ValueError` otherwise.
    """
    if not isinstance(digest, str) or not _DIGEST_RE.match(digest):
        shown = digest if isinstance(digest, str) else type(digest)
        raise ValueError(
            f"invalid artifact digest {shown!r}: expected 64 lowercase "
            "hex characters (SHA-256)")
    return digest


@dataclass
class GcReport:
    """Outcome of one :meth:`ArtifactStore.gc` pass."""

    removed: List[str] = field(default_factory=list)
    kept_pinned: int = 0
    kept_referenced: int = 0
    kept_recent: int = 0
    bytes_freed: int = 0
    dry_run: bool = False


class ArtifactStore:
    """Sharded, content-addressed JSON artifact store.

    ``hits`` / ``misses`` count :meth:`get` traffic in this process;
    ``writes`` / ``dedup_skips`` count :meth:`put` traffic (a skip is
    a put whose digest already existed — the idempotent fast path).
    The authoritative cross-process record is the run database.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.dedup_skips = 0

    # -- addressing ----------------------------------------------------

    def _path(self, digest: str) -> Path:
        validate_digest(digest)
        return self.root / digest[:2] / f"{digest[2:]}.json"

    def __contains__(self, digest: str) -> bool:
        return self._path(digest).exists()

    # -- generic JSON artifacts ----------------------------------------

    def put(self, digest: str, payload: Dict[str, object]) -> Path:
        """Idempotently persist ``payload`` under ``digest``.

        Content addressing makes publication lock-free across any
        number of writers: a digest that already exists is skipped
        (same digest ⇒ same content, so there is nothing to write),
        and racers that miss the existence check atomically
        ``os.replace`` identical bytes.  No writer ever observes a
        half-written artifact.
        """
        path = self._path(digest)
        if path.exists():
            self.dedup_skips += 1
            return path
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        self.writes += 1
        return path

    def get(self, digest: str) -> Optional[Dict[str, object]]:
        """Payload stored under ``digest``, or ``None`` (counted)."""
        path = self._path(digest)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except json.JSONDecodeError:
            # Publication is atomic, so undecodable content is genuine
            # corruption (a crashed writer on a non-POSIX rename, disk
            # trouble).  Unlink it so the recomputation's put() can
            # repair the slot instead of being dedup-skipped forever.
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            return None
        except OSError:
            self.misses += 1
            return None
        self.hits += 1
        return payload

    # -- netlists ------------------------------------------------------

    def put_netlist(self, netlist: Netlist) -> str:
        """Persist a netlist; returns its transport digest.

        Content-addressed by :func:`~repro.netlist.transport_hash`,
        which *includes* gate insertion order: the stored payload
        preserves that order (seeded site enumeration walks it), so
        the digest must too — otherwise two structurally identical
        netlists built in different orders would share one artifact
        and the second client's jobs would silently run against the
        first writer's ordering.  Any worker that loads the artifact
        reproduces seeded transforms bit-exactly.
        """
        digest = transport_hash(netlist)
        if digest not in self:
            self.put(digest, netlist_to_dict(netlist))
        return digest

    def get_netlist(self, digest: str,
                    cache: bool = True) -> Optional[Netlist]:
        """Load a netlist artifact back into a :class:`Netlist`.

        Served through the process-local
        :func:`~repro.netlist.engine_cache` by default: a warm worker
        re-loading the design it just evaluated skips the parse *and*
        keeps the compiled simulation program attached to the cached
        instance.  Safe because the key is content-addressed and the
        cache validates the netlist's mutation epoch — a client that
        mutated the shared instance in place merely forces the next
        load to re-parse.  The store is still consulted for existence,
        so a GC'd artifact reads as absent everywhere.
        """
        if cache:
            from ..netlist import engine_cache

            cached = engine_cache().get_netlist("artifact:" + digest)
            if cached is not None and digest in self:
                self.hits += 1
                return cached
        payload = self.get(digest)
        if payload is None:
            return None
        netlist = netlist_from_dict(payload)
        if cache:
            engine_cache().put_netlist("artifact:" + digest, netlist)
        return netlist

    # -- pinning -------------------------------------------------------

    _REF_OK = re.compile(r"\A[A-Za-z0-9._:@-]{1,128}\Z")

    def _pin_dir(self, digest: str) -> Path:
        validate_digest(digest)
        return self.root / ".pins" / digest

    def pin(self, digest: str, ref: str = "default") -> None:
        """Pin ``digest`` under a named reference.

        Pins are plain files (``root/.pins/<digest>/<ref>``), so
        pinning is idempotent per ``(digest, ref)``, ref-counted
        across distinct refs, and safe from any number of processes
        without locks.  A pinned artifact (and everything its payload
        references) is a GC root.
        """
        if not self._REF_OK.match(ref):
            raise ValueError(f"invalid pin ref: {ref!r}")
        pin_dir = self._pin_dir(digest)
        pin_dir.mkdir(parents=True, exist_ok=True)
        (pin_dir / ref).touch()

    def unpin(self, digest: str, ref: str = "default") -> bool:
        """Drop one reference; returns True if it existed."""
        if not self._REF_OK.match(ref):
            raise ValueError(f"invalid pin ref: {ref!r}")
        pin_dir = self._pin_dir(digest)
        try:
            (pin_dir / ref).unlink()
        except FileNotFoundError:
            return False
        try:
            pin_dir.rmdir()     # only succeeds when no refs remain
        except OSError:
            pass
        return True

    def pins(self, digest: str) -> List[str]:
        """Refs currently pinning ``digest`` (sorted)."""
        try:
            return sorted(p.name for p in self._pin_dir(digest).iterdir())
        except FileNotFoundError:
            return []

    def is_pinned(self, digest: str) -> bool:
        return bool(self.pins(digest))

    def pinned_digests(self) -> Set[str]:
        """All digests with at least one pin ref."""
        pins_root = self.root / ".pins"
        if not pins_root.is_dir():
            return set()
        return {d.name for d in pins_root.iterdir()
                if d.is_dir() and any(d.iterdir())}

    # -- garbage collection --------------------------------------------

    @staticmethod
    def _scan_refs(payload: object, out: Set[str]) -> None:
        """Collect digest-shaped strings reachable inside ``payload``."""
        if isinstance(payload, str):
            if _DIGEST_RE.match(payload):
                out.add(payload)
        elif isinstance(payload, dict):
            for key, value in payload.items():
                ArtifactStore._scan_refs(key, out)
                ArtifactStore._scan_refs(value, out)
        elif isinstance(payload, (list, tuple)):
            for value in payload:
                ArtifactStore._scan_refs(value, out)

    def referenced_digests(self, digest: str) -> Set[str]:
        """Digests the artifact under ``digest`` refers to (one hop)."""
        payload = self.get(digest)
        refs: Set[str] = set()
        if payload is not None:
            self._scan_refs(payload, refs)
        refs.discard(digest)
        return refs

    def gc(self, dry_run: bool = False,
           grace_s: float = 300.0) -> GcReport:
        """Mark-and-sweep unreachable artifacts.

        Roots are the pinned digests; the mark phase follows digest
        references embedded in artifact payloads transitively, so a
        pinned campaign result keeps the input netlists it points at.
        Artifacts modified within the last ``grace_s`` seconds are
        never collected — that is the in-flight window protecting
        results a live run has published but not yet pinned (and any
        artifact a racer is just now re-publishing).  ``dry_run``
        reports what a real pass would remove without touching disk.
        Stale ``*.tmp`` droppings older than the grace window are
        swept alongside.
        """
        now = time.time()
        present = set(self.digests())
        pinned = self.pinned_digests()
        marked: Set[str] = set()
        frontier = [d for d in pinned if d in present]
        while frontier:
            digest = frontier.pop()
            if digest in marked:
                continue
            marked.add(digest)
            for ref in self.referenced_digests(digest):
                if ref in present and ref not in marked:
                    frontier.append(ref)
        report = GcReport(dry_run=dry_run)
        for digest in sorted(present):
            if digest in pinned:
                report.kept_pinned += 1
                continue
            if digest in marked:
                report.kept_referenced += 1
                continue
            path = self._path(digest)
            try:
                mtime = path.stat().st_mtime
            except FileNotFoundError:
                continue    # a concurrent GC or client removed it
            if now - mtime < grace_s:
                report.kept_recent += 1
                continue
            report.removed.append(digest)
            try:
                report.bytes_freed += path.stat().st_size
                if not dry_run:
                    path.unlink()
            except OSError:
                pass
        if not dry_run:
            for shard in self.root.iterdir():
                if not shard.is_dir() or len(shard.name) != 2:
                    continue
                for tmp in shard.glob("*.tmp"):
                    try:
                        if now - tmp.stat().st_mtime >= grace_s:
                            tmp.unlink()
                    except OSError:
                        pass
                try:
                    shard.rmdir()   # only if now empty
                except OSError:
                    pass
        return report

    # -- introspection -------------------------------------------------

    def digests(self) -> Iterator[str]:
        """All artifact digests currently in the store."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for path in sorted(shard.iterdir()):
                if path.suffix == ".json":
                    yield shard.name + path.stem

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def __bool__(self) -> bool:
        # An empty store is still a store: without this, ``__len__``
        # makes ``if store:`` false on first use and optional-store
        # call sites silently skip the cache.
        return True

    def total_bytes(self) -> int:
        """Bytes on disk across all artifacts."""
        return sum(
            self._path(d).stat().st_size for d in self.digests())

    def __repr__(self) -> str:
        return (f"ArtifactStore({str(self.root)!r}, "
                f"artifacts={len(self)}, hits={self.hits}, "
                f"misses={self.misses})")
