"""Run database: indexed SQLite backend with a JSONL legacy fallback.

Every job the scheduler finishes — succeeded, cache-served, failed,
timed out, cancelled, or skipped — is recorded here.  The database is
the system of record for campaign forensics: *what ran, where, how
many attempts, how long, and was it computed or served from the
artifact store*.

Two backends share one API (:meth:`RunDatabase.record`, ``records``,
``query``, ``run_ids``, ``summary``), selected by
``RunDatabase(path)`` itself:

* :class:`SqliteRunDatabase` — the default for new databases.  One
  ``records`` table indexed on ``run_id``, ``spec_hash``, ``status``
  and ``job_type``; queries are pushed down to SQL, so a 10k-record
  lookup touches an index, not the whole file.  WAL journaling keeps
  concurrent readers (CLI ``runs``/``summary`` against a live
  campaign) off the writer's back.
* :class:`JsonlRunDatabase` — the original append-only JSON-lines
  log, kept for greppability and for existing ``*.jsonl`` databases.
  Reads cache the parsed prefix and its byte offset, so repeated
  ``records()`` calls parse only the appended tail instead of
  re-reading the whole file.

``RunDatabase(path)`` dispatches on content first (an existing file's
header decides), then on suffix (``.jsonl`` stays JSONL; anything
else gets SQLite).  :func:`migrate_jsonl` moves a legacy log into a
SQLite database losslessly, preserving append order and timestamps.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union


@dataclass
class RunRecord:
    """One job outcome, as logged by the scheduler."""

    run_id: str
    job_id: str
    job_type: str
    spec_hash: str
    status: str                 # "succeeded" | "failed" | "timeout" |
                                # "cancelled" | "skipped"
    attempts: int = 0
    wall_s: float = 0.0
    cache_hit: bool = False
    worker: str = ""
    error: str = ""
    seed: int = 0
    finished_at: float = field(default_factory=time.time)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        known = {f: data[f] for f in cls.__dataclass_fields__
                 if f in data}
        return cls(**known)


_FIELDS = ("run_id", "job_id", "job_type", "spec_hash", "status",
           "attempts", "wall_s", "cache_hit", "worker", "error",
           "seed", "finished_at")

_FINISHED = ("succeeded", "failed", "timeout")


class RunDatabase:
    """Log of job outcomes; dispatches to a concrete backend.

    ``RunDatabase(path)`` returns a :class:`SqliteRunDatabase` or a
    :class:`JsonlRunDatabase` depending on what ``path`` holds (or,
    for a fresh path, its suffix).  Instantiating a subclass directly
    pins the backend regardless of suffix.
    """

    def __new__(cls, path: Union[str, Path]) -> "RunDatabase":
        if cls is RunDatabase:
            return super().__new__(_backend_for(path))
        return super().__new__(cls)

    # -- writing (backend-specific) ------------------------------------

    def record(self, rec: RunRecord) -> None:
        raise NotImplementedError

    def record_many(self, recs: Sequence[RunRecord]) -> None:
        """Bulk append; one transaction on SQLite."""
        for rec in recs:
            self.record(rec)

    # -- reading (backend-specific primitives) -------------------------

    def records(self) -> List[RunRecord]:
        raise NotImplementedError

    def query(self, run_id: Optional[str] = None,
              job_type: Optional[str] = None,
              status: Optional[str] = None,
              cache_hit: Optional[bool] = None,
              since: Optional[float] = None,
              spec_hash: Optional[str] = None) -> List[RunRecord]:
        """Filtered view of the log; all filters are conjunctive."""
        out = []
        for rec in self.records():
            if run_id is not None and rec.run_id != run_id:
                continue
            if job_type is not None and rec.job_type != job_type:
                continue
            if status is not None and rec.status != status:
                continue
            if cache_hit is not None and rec.cache_hit != cache_hit:
                continue
            if since is not None and rec.finished_at < since:
                continue
            if spec_hash is not None and rec.spec_hash != spec_hash:
                continue
            out.append(rec)
        return out

    def run_ids(self) -> List[str]:
        """Distinct run ids in first-seen order."""
        seen: Dict[str, None] = {}
        for rec in self.records():
            seen.setdefault(rec.run_id, None)
        return list(seen)

    def summary(self, run_id: Optional[str] = None) -> Dict[str, object]:
        """Aggregate view: counts by status, cache traffic, wall time."""
        records = self.query(run_id=run_id)
        by_status: Dict[str, int] = {}
        for rec in records:
            by_status[rec.status] = by_status.get(rec.status, 0) + 1
        finished = [r for r in records if r.status in _FINISHED]
        hits = sum(1 for r in records if r.cache_hit)
        return {
            "records": len(records),
            "by_status": by_status,
            "cache_hits": hits,
            "cache_hit_rate": (hits / len(records)) if records else 0.0,
            "total_wall_s": sum(r.wall_s for r in finished),
            "total_attempts": sum(r.attempts for r in records),
            "runs": len({r.run_id for r in records}),
        }


class JsonlRunDatabase(RunDatabase):
    """Append-only JSON-lines backend (the legacy format).

    Reads are incremental: the parsed records and the byte offset of
    the parsed prefix are cached on the instance, so a ``records()``
    call after an append parses only the new tail.  A file that
    shrank or was replaced (different inode) triggers a full reparse;
    a trailing line without a newline is left unconsumed until its
    writer finishes it.  Returned records are shared with the cache —
    treat them as read-only.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._parsed: List[RunRecord] = []
        self._offset = 0            # bytes of file parsed so far
        self._inode: Optional[int] = None

    # -- writing -------------------------------------------------------

    def record(self, rec: RunRecord) -> None:
        """Append one record and flush it to disk."""
        line = json.dumps(rec.as_dict(), separators=(",", ":"))
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()

    # -- reading -------------------------------------------------------

    def records(self) -> List[RunRecord]:
        """All records in append order (empty if the file is absent)."""
        try:
            stat = self.path.stat()
        except FileNotFoundError:
            self._parsed, self._offset, self._inode = [], 0, None
            return []
        if stat.st_size < self._offset or (
                self._inode is not None and stat.st_ino != self._inode):
            self._parsed, self._offset = [], 0
        self._inode = stat.st_ino
        if stat.st_size == self._offset:
            return list(self._parsed)
        with open(self.path, "rb") as handle:
            handle.seek(self._offset)
            tail = handle.read()
        # Only complete lines are consumed: a torn tail line stays
        # pending (and never poisons queries), exactly like the old
        # full-scan skipped it.
        end = tail.rfind(b"\n")
        if end < 0:
            return list(self._parsed)
        for line in tail[:end + 1].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                self._parsed.append(
                    RunRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, TypeError, KeyError,
                    UnicodeDecodeError):
                continue
        self._offset += end + 1
        return list(self._parsed)


_SCHEMA = """
CREATE TABLE IF NOT EXISTS records (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    run_id      TEXT NOT NULL,
    job_id      TEXT NOT NULL,
    job_type    TEXT NOT NULL,
    spec_hash   TEXT NOT NULL,
    status      TEXT NOT NULL,
    attempts    INTEGER NOT NULL,
    wall_s      REAL NOT NULL,
    cache_hit   INTEGER NOT NULL,
    worker      TEXT NOT NULL,
    error       TEXT NOT NULL,
    seed        INTEGER NOT NULL,
    finished_at REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_records_run_id ON records(run_id);
CREATE INDEX IF NOT EXISTS idx_records_spec_hash ON records(spec_hash);
CREATE INDEX IF NOT EXISTS idx_records_status ON records(status);
CREATE INDEX IF NOT EXISTS idx_records_job_type ON records(job_type);
"""


class SqliteRunDatabase(RunDatabase):
    """SQLite backend: indexed queries, WAL for concurrent readers.

    Safe to share one instance across threads and forks: a single
    re-entrant lock serializes every statement (SQLite connections are
    not concurrency-safe objects even with ``check_same_thread``
    off), and each call pid-checks the connection — a forked child
    that inherited this object gets a *fresh* connection instead of
    reusing the parent's handle (whose file locks and WAL state belong
    to the parent process).  The inherited handle is deliberately
    never closed in the child: closing would run rollback against the
    parent's locks.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._pid = os.getpid()
        self._conn = self._connect()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(str(self.path),
                               check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=NORMAL")
        conn.execute("PRAGMA busy_timeout=5000")
        conn.executescript(_SCHEMA)
        conn.commit()
        return conn

    def _guard(self) -> "threading.RLock":
        """Lock to hold around connection use, after a pid check.

        In a forked child both the connection and the lock were
        inherited from the parent (the lock possibly mid-acquisition
        by a parent thread that does not exist here); replace both.
        Post-fork there is exactly one thread, so the swap is safe.
        """
        if os.getpid() != self._pid:
            self._lock = threading.RLock()
            self._conn = self._connect()
            self._pid = os.getpid()
        return self._lock

    def close(self) -> None:
        with self._guard():
            self._conn.close()

    # -- writing -------------------------------------------------------

    def record(self, rec: RunRecord) -> None:
        self.record_many([rec])

    def record_many(self, recs: Sequence[RunRecord]) -> None:
        rows = [tuple(
            int(getattr(r, f)) if f == "cache_hit" else getattr(r, f)
            for f in _FIELDS) for r in recs]
        with self._guard(), self._conn:
            self._conn.executemany(
                f"INSERT INTO records ({','.join(_FIELDS)}) "
                f"VALUES ({','.join('?' * len(_FIELDS))})", rows)

    # -- reading -------------------------------------------------------

    @staticmethod
    def _from_row(row: Sequence[object]) -> RunRecord:
        data = dict(zip(_FIELDS, row))
        data["cache_hit"] = bool(data["cache_hit"])
        return RunRecord(**data)

    def _select(self, where: str = "", params: Sequence[object] = ()
                ) -> List[RunRecord]:
        sql = f"SELECT {','.join(_FIELDS)} FROM records"
        if where:
            sql += " WHERE " + where
        sql += " ORDER BY id"
        with self._guard():
            return [self._from_row(row)
                    for row in self._conn.execute(sql, params)]

    def records(self) -> List[RunRecord]:
        return self._select()

    def query(self, run_id: Optional[str] = None,
              job_type: Optional[str] = None,
              status: Optional[str] = None,
              cache_hit: Optional[bool] = None,
              since: Optional[float] = None,
              spec_hash: Optional[str] = None) -> List[RunRecord]:
        clauses, params = [], []
        for column, value in (("run_id", run_id),
                              ("job_type", job_type),
                              ("status", status),
                              ("spec_hash", spec_hash)):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if cache_hit is not None:
            clauses.append("cache_hit = ?")
            params.append(int(cache_hit))
        if since is not None:
            clauses.append("finished_at >= ?")
            params.append(since)
        return self._select(" AND ".join(clauses), params)

    def run_ids(self) -> List[str]:
        with self._guard():
            return [row[0] for row in self._conn.execute(
                "SELECT run_id FROM records GROUP BY run_id "
                "ORDER BY MIN(id)")]

    def summary(self, run_id: Optional[str] = None) -> Dict[str, object]:
        where, params = ("WHERE run_id = ?", (run_id,)) \
            if run_id is not None else ("", ())
        with self._guard():
            by_status = {
                status: count for status, count in self._conn.execute(
                    "SELECT status, COUNT(*) FROM records "
                    f"{where} GROUP BY status ORDER BY MIN(id)",
                    params)}
            total, hits, attempts, runs = self._conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(cache_hit), 0), "
                "COALESCE(SUM(attempts), 0), COUNT(DISTINCT run_id) "
                f"FROM records {where}", params).fetchone()
            placeholders = ",".join("?" * len(_FINISHED))
            (wall,) = self._conn.execute(
                "SELECT COALESCE(SUM(wall_s), 0.0) FROM records "
                + (where + " AND " if where else "WHERE ")
                + f"status IN ({placeholders})",
                tuple(params) + _FINISHED).fetchone()
        return {
            "records": total,
            "by_status": by_status,
            "cache_hits": hits,
            "cache_hit_rate": (hits / total) if total else 0.0,
            "total_wall_s": wall,
            "total_attempts": attempts,
            "runs": runs,
        }


def _backend_for(path: Union[str, Path]) -> type:
    """Backend class for ``path``: content sniff, then suffix."""
    p = Path(path)
    try:
        if p.stat().st_size:
            with open(p, "rb") as handle:
                head = handle.read(16)
            if head.startswith(b"SQLite format 3"):
                return SqliteRunDatabase
            return JsonlRunDatabase
    except FileNotFoundError:
        pass
    return JsonlRunDatabase if p.suffix == ".jsonl" \
        else SqliteRunDatabase


def migrate_jsonl(src: Union[str, Path],
                  dest: Union[str, Path]) -> int:
    """Copy a JSONL run log into a SQLite database, losslessly.

    Append order, timestamps, and every field survive; the source is
    left untouched.  Returns the number of records migrated.  Raises
    if ``dest`` already holds records (a migration is one-shot, not a
    merge).
    """
    source = JsonlRunDatabase(src)
    target = SqliteRunDatabase(dest)
    (existing,) = target._conn.execute(
        "SELECT COUNT(*) FROM records").fetchone()
    if existing:
        raise ValueError(
            f"refusing to migrate into non-empty database {dest} "
            f"({existing} records present)")
    records = source.records()
    target.record_many(records)
    return len(records)


def render_records(records: Iterable[RunRecord]) -> str:
    """Fixed-width table of records for the CLI."""
    rows = list(records)
    if not rows:
        return "(no records)"
    lines = [f"{'job':<26} {'type':<20} {'status':<10} {'att':>3} "
             f"{'wall (s)':>9} {'cache':>5}  {'worker':<8} error"]
    for r in rows:
        lines.append(
            f"{r.job_id:<26.26} {r.job_type:<20.20} {r.status:<10} "
            f"{r.attempts:>3} {r.wall_s:>9.3f} "
            f"{'hit' if r.cache_hit else '-':>5}  {r.worker:<8.8} "
            f"{r.error.splitlines()[0][:40] if r.error else ''}")
    return "\n".join(lines)
