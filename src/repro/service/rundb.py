"""Append-only run database with a query API.

Every job the scheduler finishes — succeeded, cache-served, failed,
timed out, cancelled, or skipped — appends one JSON line here.  The
file is the system of record for campaign forensics: *what ran, where,
how many attempts, how long, and was it computed or served from the
artifact store*.

JSONL was chosen over SQLite deliberately: appends from the scheduler
process are atomic at line granularity, the file is greppable and
diff-able, and the query API below loads and filters it in one pass —
plenty for campaign-scale record counts.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union


@dataclass
class RunRecord:
    """One job outcome, as logged by the scheduler."""

    run_id: str
    job_id: str
    job_type: str
    spec_hash: str
    status: str                 # "succeeded" | "failed" | "timeout" |
                                # "cancelled" | "skipped"
    attempts: int = 0
    wall_s: float = 0.0
    cache_hit: bool = False
    worker: str = ""
    error: str = ""
    seed: int = 0
    finished_at: float = field(default_factory=time.time)

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        known = {f: data[f] for f in cls.__dataclass_fields__
                 if f in data}
        return cls(**known)


class RunDatabase:
    """JSONL-backed, append-only log of job outcomes."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- writing -------------------------------------------------------

    def record(self, rec: RunRecord) -> None:
        """Append one record and flush it to disk."""
        line = json.dumps(rec.as_dict(), separators=(",", ":"))
        with open(self.path, "a") as handle:
            handle.write(line + "\n")
            handle.flush()

    # -- reading -------------------------------------------------------

    def records(self) -> List[RunRecord]:
        """All records in append order (empty if the file is absent)."""
        if not self.path.exists():
            return []
        out: List[RunRecord] = []
        with open(self.path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    out.append(RunRecord.from_dict(json.loads(line)))
                except (json.JSONDecodeError, TypeError, KeyError):
                    continue   # a torn tail line never poisons queries
        return out

    def query(self, run_id: Optional[str] = None,
              job_type: Optional[str] = None,
              status: Optional[str] = None,
              cache_hit: Optional[bool] = None,
              since: Optional[float] = None) -> List[RunRecord]:
        """Filtered view of the log; all filters are conjunctive."""
        out = []
        for rec in self.records():
            if run_id is not None and rec.run_id != run_id:
                continue
            if job_type is not None and rec.job_type != job_type:
                continue
            if status is not None and rec.status != status:
                continue
            if cache_hit is not None and rec.cache_hit != cache_hit:
                continue
            if since is not None and rec.finished_at < since:
                continue
            out.append(rec)
        return out

    def run_ids(self) -> List[str]:
        """Distinct run ids in first-seen order."""
        seen: Dict[str, None] = {}
        for rec in self.records():
            seen.setdefault(rec.run_id, None)
        return list(seen)

    def summary(self, run_id: Optional[str] = None) -> Dict[str, object]:
        """Aggregate view: counts by status, cache traffic, wall time."""
        records = self.query(run_id=run_id)
        by_status: Dict[str, int] = {}
        for rec in records:
            by_status[rec.status] = by_status.get(rec.status, 0) + 1
        finished = [r for r in records
                    if r.status in ("succeeded", "failed", "timeout")]
        hits = sum(1 for r in records if r.cache_hit)
        return {
            "records": len(records),
            "by_status": by_status,
            "cache_hits": hits,
            "cache_hit_rate": (hits / len(records)) if records else 0.0,
            "total_wall_s": sum(r.wall_s for r in finished),
            "total_attempts": sum(r.attempts for r in records),
            "runs": len({r.run_id for r in records}),
        }


def render_records(records: Iterable[RunRecord]) -> str:
    """Fixed-width table of records for the CLI."""
    rows = list(records)
    if not rows:
        return "(no records)"
    lines = [f"{'job':<26} {'type':<20} {'status':<10} {'att':>3} "
             f"{'wall (s)':>9} {'cache':>5}  {'worker':<8} error"]
    for r in rows:
        lines.append(
            f"{r.job_id:<26.26} {r.job_type:<20.20} {r.status:<10} "
            f"{r.attempts:>3} {r.wall_s:>9.3f} "
            f"{'hit' if r.cache_hit else '-':>5}  {r.worker:<8.8} "
            f"{r.error.splitlines()[0][:40] if r.error else ''}")
    return "\n".join(lines)
