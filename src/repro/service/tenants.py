"""Tenant model for the evaluation gateway: identity, quotas, views.

A *tenant* is one consumer of the shared evaluation service — a
design team with its own token, its own slice of the run database,
its own artifact pins, and its own throughput budget.  Everything
here is mechanism the gateway composes per request:

* :class:`Tenant` / :class:`TenantRegistry` — token -> identity
  resolution (the gateway's only authentication step);
* :class:`TokenBucket` — classic token-bucket rate limiting backing
  the gateway's 429 responses;
* run-id namespacing (:func:`namespace_run_id` /
  :func:`split_run_id`) — tenant submissions share one physical
  run database but live under ``t/<tenant>/<submission>`` run ids;
* :class:`NamespacedRunDatabase` — a read view of a shared
  :class:`~repro.service.rundb.RunDatabase` that surfaces only one
  tenant's records, with the namespace prefix stripped so tenants
  see their own run ids, not the shared encoding;
* pin-ref namespacing (:func:`tenant_pin_ref`) — a tenant's artifact
  pins live under ``tenant:<name>:<ref>``, so one tenant's ``unpin``
  or ``gc`` can never release another tenant's GC roots.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from .rundb import RunDatabase, RunRecord

#: Prefix marking a gateway-namespaced run id in the shared database.
_RUN_NS = "t/"

#: Prefix marking a tenant-owned pin reference in the shared store.
_PIN_NS = "tenant:"


@dataclass(frozen=True)
class Tenant:
    """One gateway consumer and its quota envelope.

    ``rate`` is the steady-state request budget (requests/second,
    token-bucket refill) and ``burst`` the bucket capacity;
    ``max_in_flight`` bounds how many of this tenant's jobs may be
    live (pending or running) at once — the backpressure quota behind
    503 responses.
    """

    name: str
    token: str
    rate: float = 50.0
    burst: int = 100
    max_in_flight: int = 64

    def __post_init__(self) -> None:
        if not self.name or "/" in self.name or ":" in self.name:
            raise ValueError(
                f"invalid tenant name {self.name!r}: must be non-empty "
                "and contain no '/' or ':'")
        if not self.token:
            raise ValueError(f"tenant {self.name!r} has an empty token")
        if self.rate <= 0 or self.burst < 1 or self.max_in_flight < 1:
            raise ValueError(
                f"tenant {self.name!r}: rate must be > 0, burst and "
                "max_in_flight must be >= 1")


class TenantRegistry:
    """Token -> :class:`Tenant` resolution for the gateway."""

    def __init__(self, tenants: Iterable[Tenant]) -> None:
        self._by_token: Dict[str, Tenant] = {}
        self._by_name: Dict[str, Tenant] = {}
        for tenant in tenants:
            if tenant.name in self._by_name:
                raise ValueError(f"duplicate tenant name {tenant.name!r}")
            if tenant.token in self._by_token:
                raise ValueError(
                    f"tenants {self._by_token[tenant.token].name!r} and "
                    f"{tenant.name!r} share a token")
            self._by_name[tenant.name] = tenant
            self._by_token[tenant.token] = tenant
        if not self._by_name:
            raise ValueError("registry needs at least one tenant")

    def authenticate(self, token: Optional[str]) -> Optional[Tenant]:
        """The tenant owning ``token``, or None (the 401 path)."""
        if not token:
            return None
        return self._by_token.get(token)

    def get(self, name: str) -> Optional[Tenant]:
        return self._by_name.get(name)

    def tenants(self) -> List[Tenant]:
        return list(self._by_name.values())

    def __len__(self) -> int:
        return len(self._by_name)


class TokenBucket:
    """Token-bucket rate limiter (monotonic clock, injectable).

    Starts full.  ``try_acquire`` is the whole API: take one token if
    available, else report how long until one will be.  Not
    thread-safe by itself — the gateway serializes access under its
    state lock.
    """

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if rate <= 0 or burst < 1:
            raise ValueError("rate must be > 0 and burst >= 1")
        self.rate = float(rate)
        self.burst = int(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(self.burst,
                           self._tokens + (now - self._last) * self.rate)
        self._last = now

    def try_acquire(self) -> Tuple[bool, float]:
        """(granted, retry_after_s).  ``retry_after_s`` is 0 on grant."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True, 0.0
        return False, (1.0 - self._tokens) / self.rate


# -- run-id namespacing ------------------------------------------------


def namespace_run_id(tenant: str, submission: str) -> str:
    """The shared-database run id for one tenant submission."""
    return f"{_RUN_NS}{tenant}/{submission}"


def split_run_id(run_id: str) -> Optional[Tuple[str, str]]:
    """(tenant, local run id) for a namespaced id, else None."""
    if not run_id.startswith(_RUN_NS):
        return None
    rest = run_id[len(_RUN_NS):]
    tenant, sep, local = rest.partition("/")
    if not sep or not tenant or not local:
        return None
    return tenant, local


def tenant_pin_ref(tenant: str, ref: str) -> str:
    """The shared-store pin ref for one tenant's named reference."""
    return f"{_PIN_NS}{tenant}:{ref}"


class NamespacedRunDatabase:
    """One tenant's read view of a shared run database.

    Mirrors the read half of the :class:`~repro.service.rundb.
    RunDatabase` API (``records``/``query``/``run_ids``/``summary``)
    but surfaces only records whose run id lives under this tenant's
    namespace — with the ``t/<tenant>/`` prefix stripped, so clients
    see the submission ids they were given.  Strictly read-only: the
    gateway writes through the scheduler, never through this view.
    """

    def __init__(self, db: RunDatabase, tenant: str) -> None:
        self._db = db
        self.tenant = tenant

    def _localize(self, rec: RunRecord) -> Optional[RunRecord]:
        split = split_run_id(rec.run_id)
        if split is None or split[0] != self.tenant:
            return None
        data = rec.as_dict()
        data["run_id"] = split[1]
        return RunRecord.from_dict(data)

    def records(self) -> List[RunRecord]:
        out = []
        for rec in self._db.records():
            local = self._localize(rec)
            if local is not None:
                out.append(local)
        return out

    def query(self, run_id: Optional[str] = None,
              job_type: Optional[str] = None,
              status: Optional[str] = None,
              cache_hit: Optional[bool] = None,
              since: Optional[float] = None,
              spec_hash: Optional[str] = None) -> List[RunRecord]:
        shared_run = (namespace_run_id(self.tenant, run_id)
                      if run_id is not None else None)
        out = []
        for rec in self._db.query(run_id=shared_run, job_type=job_type,
                                  status=status, cache_hit=cache_hit,
                                  since=since, spec_hash=spec_hash):
            local = self._localize(rec)
            if local is not None:
                out.append(local)
        return out

    def run_ids(self) -> List[str]:
        out = []
        for run_id in self._db.run_ids():
            split = split_run_id(run_id)
            if split is not None and split[0] == self.tenant:
                out.append(split[1])
        return out

    def summary(self, run_id: Optional[str] = None) -> Dict[str, object]:
        records = self.query(run_id=run_id)
        by_status: Dict[str, int] = {}
        for rec in records:
            by_status[rec.status] = by_status.get(rec.status, 0) + 1
        finished = [r for r in records
                    if r.status in ("succeeded", "failed", "timeout")]
        hits = sum(1 for r in records if r.cache_hit)
        return {
            "records": len(records),
            "by_status": by_status,
            "cache_hits": hits,
            "cache_hit_rate": (hits / len(records)) if records else 0.0,
            "total_wall_s": sum(r.wall_s for r in finished),
            "total_attempts": sum(r.attempts for r in records),
            "runs": len({r.run_id for r in records}),
        }
