"""Multi-tenant evaluation gateway: the service stack over HTTP.

A long-running, stdlib-only ``asyncio`` HTTP server that owns one
shared :class:`~repro.service.scheduler.WorkerPool` (warm workers), a
:class:`~repro.service.rundb.RunDatabase`, and an
:class:`~repro.service.store.ArtifactStore`, and serves every
registered job type and campaign to many tenants at once.  This is
the paper's "security evaluation as a service" stance made literal:
composition checks, locking sweeps, and closure runs submitted by
independent design teams against one warm evaluation backend.

Architecture — one scheduler, one executor thread, an event bus:

* All HTTP handlers run on one asyncio loop (its own thread).  They
  never touch the scheduler directly: submissions and cancellations
  are *commands* on a thread-safe queue.
* One **executor thread** owns the long-lived
  :class:`~repro.service.scheduler.Scheduler` and its pool, alternating
  between command processing and
  :meth:`~repro.service.scheduler.Scheduler.service_step`.  A wake
  pipe is part of the scheduler's wait set, so a new submission
  interrupts the step's sleep instead of riding out its quantum.
  Two threads stepping one pool would race its pipes; one thread,
  by construction, cannot.
* The scheduler publishes every state transition to an
  :class:`~repro.service.events.EventBus`.  A small apply thread
  folds events into the gateway's job table (tenant ownership,
  latest state, results), releases quota, grants artifact
  visibility, and prunes fully-terminal submissions from the
  scheduler; SSE handlers subscribe to the same bus.

Tenancy: every request carries a token (``Authorization: Bearer`` or
``X-Repro-Token``) resolved through a
:class:`~repro.service.tenants.TenantRegistry`.  Requests are
token-bucket rate-limited per tenant (429), live jobs are quota-bound
per tenant (503), run-database records live under per-tenant run-id
namespaces, and artifact pins are tenant-namespaced refs — one
tenant's ``gc`` can never sweep another's inputs.

Gateway-submitted jobs are *bit-identical* to CLI submissions: the
same :class:`~repro.service.jobs.JobSpec` construction yields the
same ``spec_hash``, so a job computed over one transport is a cache
hit over the other.

Dispatcher-level errors (any route):

    401 unauthenticated     missing or unknown token
    404 not_found           no route matches the path
    405 method_not_allowed  path exists, method does not
    413 too_large           request body over the size cap
    429 rate_limited        token bucket empty (Retry-After set)
    400 bad_request         body is not valid JSON
    500 internal            unhandled handler failure
"""

from __future__ import annotations

import asyncio
import itertools
import json
import multiprocessing.util
import os
import queue
import re
import threading
import time
import traceback
import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..netlist import netlist_from_dict
from .campaigns import BENCH_CIRCUITS, DEFAULT_STACKS
from .events import EventBus, JobEvent
from .jobs import JobSpec, registered_job_types
from .rundb import RunDatabase
from .scheduler import Scheduler, WorkerPool
from .store import ArtifactStore, validate_digest
from .tenants import (
    NamespacedRunDatabase,
    Tenant,
    TenantRegistry,
    TokenBucket,
    namespace_run_id,
    tenant_pin_ref,
)

#: Request bodies over this are refused (413) before buffering more.
MAX_BODY_BYTES = 32 * 1024 * 1024

#: User-supplied pin reference names (the tenant namespace prefix is
#: added by the gateway, so a ref can never address another tenant's).
_USER_REF_OK = re.compile(r"\A[A-Za-z0-9._@-]{1,64}\Z")


class GatewayError(Exception):
    """An HTTP error response: status, machine code, human message."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after

    def payload(self) -> Dict[str, object]:
        return {"error": {"code": self.code, "message": self.message}}


# -- request plumbing --------------------------------------------------


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: Dict[str, object]


@dataclass(frozen=True)
class Route:
    """One API route: method + path pattern -> handler.

    ``pattern`` segments of the form ``{name}`` capture one path
    segment.  ``kind`` is ``"json"`` (handler returns
    ``(status, payload)``) or ``"sse"`` (handler returns a stream
    descriptor the dispatcher serves as Server-Sent Events).
    """

    method: str
    pattern: str
    handler: Callable
    kind: str = "json"

    def match(self, path: str) -> Optional[Dict[str, str]]:
        want = self.pattern.strip("/").split("/")
        have = path.strip("/").split("/")
        if len(want) != len(have):
            return None
        params: Dict[str, str] = {}
        for w, h in zip(want, have):
            if w.startswith("{") and w.endswith("}"):
                if not h:
                    return None
                params[w[1:-1]] = urllib.parse.unquote(h)
            elif w != h:
                return None
        return params


# -- gateway-side job/submission state ---------------------------------


@dataclass
class _JobView:
    """The gateway's durable view of one submitted job.

    Outlives the scheduler's own job entry (which is pruned once a
    submission is fully terminal) so status and results stay
    queryable for the server's lifetime.
    """

    job_id: str
    tenant: str
    submission_id: str
    event: JobEvent
    terminal: bool = False

    def to_dict(self, with_result: bool = True) -> Dict[str, object]:
        e = self.event
        out = {
            "job_id": self.job_id,
            "submission_id": self.submission_id,
            "run_id": self.submission_id,
            "job_type": e.job_type,
            "spec_hash": e.spec_hash,
            "status": e.status,
            "attempts": e.attempts,
            "cache_hit": e.cache_hit,
            "wall_s": e.wall_s,
            "worker": e.worker,
            "error": e.error,
        }
        if with_result and e.status == "succeeded":
            out["result"] = e.result
        return out


@dataclass
class _Submission:
    """One POST of jobs (single job or expanded campaign)."""

    submission_id: str
    tenant: str
    kind: str                   # "job" | campaign name
    job_ids: List[str]
    pinned: List[str]           # input digests pinned under this ref
    remaining: int = 0


@dataclass
class _TenantState:
    """Mutable per-tenant accounting (guarded by the gateway lock)."""

    tenant: Tenant
    bucket: TokenBucket
    in_flight: int = 0
    digests: Set[str] = field(default_factory=set)


# -- request-body -> JobSpec -------------------------------------------


def spec_from_body(body: Dict[str, object]) -> JobSpec:
    """Build the canonical :class:`JobSpec` for a submit-job body.

    This is *the* submission path: the CLI-equivalent spec is built
    from the same fields (job type, params, seed, execution policy),
    so the resulting ``spec_hash`` is transport-independent.  Raises
    :class:`GatewayError` (400) on malformed bodies and unregistered
    job types — every *registered* type is accepted, which
    ``scripts/check_api.py`` proves against the registry.
    """
    if not isinstance(body, dict):
        raise GatewayError(400, "bad_request", "body must be an object")
    job_type = body.get("job_type")
    if not isinstance(job_type, str) or not job_type:
        raise GatewayError(400, "bad_request",
                           "missing or invalid 'job_type'")
    if job_type not in registered_job_types():
        raise GatewayError(
            400, "bad_request",
            f"unknown job type {job_type!r}; registered: "
            + ", ".join(sorted(registered_job_types())))
    params = body.get("params", {})
    if not isinstance(params, dict):
        raise GatewayError(400, "bad_request",
                           "'params' must be an object")
    timeout = body.get("timeout")
    try:
        return JobSpec(
            job_type, params=params,
            seed=int(body.get("seed", 0)),
            timeout=None if timeout is None else float(timeout),
            retries=int(body.get("retries", 0)),
            retry_backoff=float(body.get("retry_backoff", 0.05)),
            retry_on_timeout=bool(body.get("retry_on_timeout", False)),
            cacheable=bool(body.get("cacheable", True)))
    except (TypeError, ValueError) as exc:
        raise GatewayError(400, "bad_request",
                           f"invalid job spec: {exc}") from None


# -- campaign expansion ------------------------------------------------
#
# Each expander mirrors its campaigns.py twin field for field, so a
# campaign submitted over HTTP hashes (and caches) identically to the
# same campaign run through the CLI.


def _bench_netlists(store: ArtifactStore,
                    labels: Sequence[str]) -> List[str]:
    digests = []
    for label in labels:
        make = BENCH_CIRCUITS.get(str(label))
        if make is None:
            raise GatewayError(
                400, "bad_request",
                f"unknown bench {label!r}; choose from "
                f"{sorted(BENCH_CIRCUITS)}")
        digests.append(store.put_netlist(make()))
    return digests


def _expand_sweep(body: Dict[str, object], store: ArtifactStore
                  ) -> Tuple[List[JobSpec], List[str]]:
    """Mirror of :func:`~repro.service.campaigns.locking_sweep_campaign`."""
    widths = body.get("widths", [0, 2, 4, 8])
    if not isinstance(widths, list) or not widths:
        raise GatewayError(400, "bad_request",
                           "'widths' must be a non-empty list")
    (input_hash,) = _bench_netlists(store, [body.get("bench", "c17")])
    seed = int(body.get("seed", 0))
    timeout = body.get("timeout")
    specs = [JobSpec(
        "locking-point",
        params={"netlist": input_hash, "key_bits": int(bits),
                "max_iterations": int(body.get("max_iterations", 400))},
        seed=seed,
        timeout=None if timeout is None else float(timeout),
        retries=int(body.get("retries", 1)))
        for bits in widths]
    return specs, [input_hash]


def _expand_closure(body: Dict[str, object], store: ArtifactStore
                    ) -> Tuple[List[JobSpec], List[str]]:
    """Mirror of :func:`~repro.service.campaigns.security_closure_campaign`."""
    benches = body.get("benches", ["c17", "rca8"])
    if not isinstance(benches, list) or not benches:
        raise GatewayError(400, "bad_request",
                           "'benches' must be a non-empty list")
    input_hashes = _bench_netlists(store, benches)
    thresholds = dict(body.get("thresholds")
                      or {"probing": 0.05, "fia": 0.30, "trojan": 0.05})
    num_layers = body.get("num_layers")
    seed = int(body.get("seed", 0))
    timeout = body.get("timeout")
    specs = [JobSpec(
        "closure",
        params={"netlist": input_hash,
                "thresholds": thresholds,
                "num_layers": (None if num_layers is None
                               else int(num_layers)),
                "max_iterations": int(body.get("max_iterations", 4)),
                "placement_iterations": int(
                    body.get("placement_iterations", 2000))},
        seed=seed,
        timeout=None if timeout is None else float(timeout),
        retries=int(body.get("retries", 1)))
        for input_hash in input_hashes]
    return specs, input_hashes


def _expand_compose(body: Dict[str, object], store: ArtifactStore
                    ) -> Tuple[List[JobSpec], List[str]]:
    """Mirror of :func:`~repro.service.campaigns.
    composition_matrix_campaign`."""
    del store   # composition designs travel by registry name
    labels = body.get("stacks")
    if labels is None:
        stacks = dict(DEFAULT_STACKS)
    else:
        if not isinstance(labels, list) or not labels:
            raise GatewayError(400, "bad_request",
                               "'stacks' must be a non-empty list")
        unknown = [s for s in labels if s not in DEFAULT_STACKS]
        if unknown:
            raise GatewayError(
                400, "bad_request",
                f"unknown stack(s) {unknown}; choose from "
                f"{sorted(DEFAULT_STACKS)}")
        stacks = {label: DEFAULT_STACKS[label] for label in labels}
    engine = dict(body.get("engine")
                  or {"n_traces": 4000, "noise_sigma": 0.25})
    seed = int(body.get("seed", 1))
    timeout = body.get("timeout")
    specs = [JobSpec(
        "composition-stack",
        params={"design": str(body.get("design", "masked-and")),
                "stack": list(stack), "engine": engine},
        seed=seed,
        timeout=None if timeout is None else float(timeout),
        retries=int(body.get("retries", 1)))
        for stack in stacks.values()]
    return specs, []


#: Campaign name -> expander.  Every entry is reachable through
#: ``POST /v1/campaigns`` and audited by ``scripts/check_api.py``.
CAMPAIGN_EXPANDERS: Dict[str, Callable] = {
    "sweep": _expand_sweep,
    "closure": _expand_closure,
    "compose": _expand_compose,
}


# -- route handlers ----------------------------------------------------
#
# Module-level async functions taking (gw, tenant, params, body,
# query): the explicit ``tenant`` argument is the scoping contract
# (statically audited — no handler can be registered without it).


async def handle_submit_job(gw: "Gateway", tenant: Tenant,
                            params: Dict[str, str],
                            body: Dict[str, object],
                            query: Dict[str, str]):
    """Submit one job of any registered type.

    Body: ``{"job_type", "params", "seed", "timeout", "retries",
    "retry_backoff", "retry_on_timeout", "cacheable"}`` (all but
    ``job_type`` optional).  Digest-shaped strings in ``params`` must
    name artifacts visible to the submitting tenant.

    Errors:
        400 bad_request     malformed body / unknown job type
        404 not_found       params reference an artifact not visible
        503 quota_exceeded  tenant's max_in_flight reached
    """
    del params, query
    spec = spec_from_body(body)
    gw._require_param_digests(tenant, spec)
    return 202, await gw._submit(tenant, [spec], pins=[], kind="job")


async def handle_submit_campaign(gw: "Gateway", tenant: Tenant,
                                 params: Dict[str, str],
                                 body: Dict[str, object],
                                 query: Dict[str, str]):
    """Submit a named campaign, expanded server-side into jobs.

    Body: ``{"campaign": "sweep"|"closure"|"compose", ...}`` with the
    campaign's own fields mirroring the CLI flags (bench/widths,
    benches/thresholds, design/stacks).  Input netlists are published
    and pinned under a tenant-scoped ref for the submission's
    lifetime.

    Errors:
        400 bad_request     unknown campaign / malformed fields
        503 quota_exceeded  tenant's max_in_flight reached
    """
    del params, query
    name = body.get("campaign") if isinstance(body, dict) else None
    expander = CAMPAIGN_EXPANDERS.get(name) if isinstance(name, str) \
        else None
    if expander is None:
        raise GatewayError(
            400, "bad_request",
            f"unknown campaign {name!r}; choose from "
            f"{sorted(CAMPAIGN_EXPANDERS)}")
    specs, input_digests = expander(body, gw.store)
    return 202, await gw._submit(tenant, specs, pins=input_digests,
                                 kind=name)


async def handle_list_jobs(gw: "Gateway", tenant: Tenant,
                           params: Dict[str, str],
                           body: Dict[str, object],
                           query: Dict[str, str]):
    """List the tenant's jobs (newest first; ``?limit=N``, ``?status=``).

    Errors:
        400 bad_request     non-integer limit
    """
    del params, body
    try:
        limit = int(query.get("limit", 200))
    except ValueError:
        raise GatewayError(400, "bad_request",
                           "'limit' must be an integer") from None
    status = query.get("status")
    with gw._lock:
        views = [v for v in gw._jobs.values() if v.tenant == tenant.name]
    views.reverse()
    if status:
        views = [v for v in views if v.event.status == status]
    return 200, {"jobs": [v.to_dict(with_result=False)
                          for v in views[:max(0, limit)]]}


async def handle_get_job(gw: "Gateway", tenant: Tenant,
                         params: Dict[str, str],
                         body: Dict[str, object],
                         query: Dict[str, str]):
    """One job's current state (includes the result once succeeded).

    Errors:
        404 not_found       unknown job id, or another tenant's job
    """
    del body, query
    view = gw._view_for(tenant, params["job_id"])
    return 200, view.to_dict()


async def handle_job_events(gw: "Gateway", tenant: Tenant,
                            params: Dict[str, str],
                            body: Dict[str, object],
                            query: Dict[str, str]):
    """Server-Sent Events stream of one job's state transitions.

    Emits the current state immediately, then every transition as it
    happens (``event: job``, JSON data), ending after the terminal
    one.  Cancelling the job closes the stream cleanly with its
    ``cancelled`` event.

    Errors:
        404 not_found       unknown job id, or another tenant's job
    """
    del body, query
    view = gw._view_for(tenant, params["job_id"])
    with gw._lock:
        snapshot = view.event
    sub = gw.bus.subscribe(job_ids=[view.job_id], replay=True,
                           after_seq=snapshot.seq)
    return "sse", snapshot, sub


async def handle_cancel_job(gw: "Gateway", tenant: Tenant,
                            params: Dict[str, str],
                            body: Dict[str, object],
                            query: Dict[str, str]):
    """Cancel a live job; dependents are skipped, the SSE stream ends.

    Errors:
        404 not_found       unknown job id, or another tenant's job
        409 conflict        job already terminal
    """
    del body, query
    view = gw._view_for(tenant, params["job_id"])
    with gw._lock:
        if view.terminal:
            raise GatewayError(409, "conflict",
                               f"job {view.job_id} is already "
                               f"{view.event.status}")
    status, payload = await gw._command_reply(("cancel", view.job_id))
    if status == "error":
        raise GatewayError(409, "conflict",
                           f"job {view.job_id} can no longer be "
                           f"cancelled: {payload}")
    return 202, {"job_id": view.job_id, "cancelling": True}


async def handle_runs(gw: "Gateway", tenant: Tenant,
                      params: Dict[str, str],
                      body: Dict[str, object],
                      query: Dict[str, str]):
    """Query the tenant's slice of the run database.

    Filters: ``?run=``, ``?type=``, ``?status=``, ``?cache=hit|miss``,
    ``?spec_hash=``.  Run ids are tenant-local submission ids.

    Errors:
        400 bad_request     invalid cache filter
    """
    del params, body
    cache = query.get("cache")
    if cache not in (None, "hit", "miss"):
        raise GatewayError(400, "bad_request",
                           "'cache' must be 'hit' or 'miss'")
    view = NamespacedRunDatabase(gw.rundb, tenant.name) \
        if gw.rundb is not None else None
    if view is None:
        return 200, {"records": [], "runs": []}
    records = view.query(
        run_id=query.get("run"), job_type=query.get("type"),
        status=query.get("status"),
        cache_hit=None if cache is None else cache == "hit",
        spec_hash=query.get("spec_hash"))
    return 200, {"records": [r.as_dict() for r in records],
                 "runs": view.run_ids()}


async def handle_get_artifact(gw: "Gateway", tenant: Tenant,
                              params: Dict[str, str],
                              body: Dict[str, object],
                              query: Dict[str, str]):
    """Download an artifact payload by content digest.

    Only digests visible to the tenant — published by it, named in
    its submissions, or produced by its succeeded jobs — are served;
    everything else is indistinguishable from absent.

    Errors:
        400 bad_request     malformed digest (not 64-hex)
        404 not_found       artifact absent or not visible
    """
    del body, query
    digest = gw._checked_digest(params["digest"])
    gw._require_visible(tenant, digest)
    payload = gw.store.get(digest)
    if payload is None:
        raise GatewayError(404, "not_found",
                           f"artifact {digest} not found")
    return 200, {"digest": digest, "payload": payload}


async def handle_publish_netlist(gw: "Gateway", tenant: Tenant,
                                 params: Dict[str, str],
                                 body: Dict[str, object],
                                 query: Dict[str, str]):
    """Publish an input netlist; returns its content digest.

    Body is the transport dict form
    (:func:`repro.netlist.netlist_to_dict`).  The artifact is pinned
    under the tenant's ``published`` ref (its GC root) and becomes
    visible to — only — the publishing tenant.

    Errors:
        400 bad_request     body is not a valid netlist transport dict
    """
    del params, query
    try:
        netlist = netlist_from_dict(body)
    except Exception as exc:   # noqa: BLE001 — any parse failure is a 400
        raise GatewayError(400, "bad_request",
                           f"not a netlist transport dict: {exc}") \
            from None
    digest = gw.store.put_netlist(netlist)
    gw.store.pin(digest, ref=tenant_pin_ref(tenant.name, "published"))
    with gw._lock:
        gw._tenant_state[tenant.name].digests.add(digest)
    return 201, {"digest": digest, "name": netlist.name}


async def handle_pin(gw: "Gateway", tenant: Tenant,
                     params: Dict[str, str],
                     body: Dict[str, object],
                     query: Dict[str, str]):
    """Pin a visible artifact under a tenant-scoped reference.

    Body: ``{"ref": name}`` (default ``"default"``).  The stored ref
    is namespaced ``tenant:<name>:<ref>`` — pinning is per-tenant
    ref-counted, and no tenant can release another's pins.

    Errors:
        400 bad_request     malformed digest or ref name
        404 not_found       artifact not visible to this tenant
    """
    del query
    digest = gw._checked_digest(params["digest"])
    gw._require_visible(tenant, digest)
    ref = gw._checked_ref(body.get("ref", "default"))
    gw.store.pin(digest, ref=tenant_pin_ref(tenant.name, ref))
    return 200, {"digest": digest, "ref": ref, "pinned": True}


async def handle_unpin(gw: "Gateway", tenant: Tenant,
                       params: Dict[str, str],
                       body: Dict[str, object],
                       query: Dict[str, str]):
    """Drop one of the tenant's own pin references from an artifact.

    Only refs in the tenant's namespace can be released; the response
    reports whether the ref existed.

    Errors:
        400 bad_request     malformed digest or ref name
        404 not_found       artifact not visible to this tenant
    """
    del query
    digest = gw._checked_digest(params["digest"])
    gw._require_visible(tenant, digest)
    ref = gw._checked_ref(body.get("ref", "default"))
    existed = gw.store.unpin(digest,
                             ref=tenant_pin_ref(tenant.name, ref))
    return 200, {"digest": digest, "ref": ref, "unpinned": existed}


async def handle_status(gw: "Gateway", tenant: Tenant,
                        params: Dict[str, str],
                        body: Dict[str, object],
                        query: Dict[str, str]):
    """The tenant's quota usage and the server's execution footprint.

    Errors:
        (dispatcher-level only)
    """
    del params, body, query
    with gw._lock:
        state = gw._tenant_state[tenant.name]
        own = [v for v in gw._jobs.values() if v.tenant == tenant.name]
        by_status: Dict[str, int] = {}
        for v in own:
            by_status[v.event.status] = by_status.get(
                v.event.status, 0) + 1
        return 200, {
            "tenant": tenant.name,
            "in_flight": state.in_flight,
            "max_in_flight": tenant.max_in_flight,
            "rate": tenant.rate,
            "burst": tenant.burst,
            "jobs": by_status,
            "artifacts_visible": len(state.digests),
            "workers": gw.workers,
        }


#: The gateway's complete API surface.  ``scripts/check_api.py``
#: audits this table: every handler is tenant-scoped, documented, and
#: carries an error-code table.
ROUTES: List[Route] = [
    Route("POST", "/v1/jobs", handle_submit_job),
    Route("POST", "/v1/campaigns", handle_submit_campaign),
    Route("GET", "/v1/jobs", handle_list_jobs),
    Route("GET", "/v1/jobs/{job_id}", handle_get_job),
    Route("GET", "/v1/jobs/{job_id}/events", handle_job_events,
          kind="sse"),
    Route("POST", "/v1/jobs/{job_id}/cancel", handle_cancel_job),
    Route("GET", "/v1/runs", handle_runs),
    Route("GET", "/v1/artifacts/{digest}", handle_get_artifact),
    Route("POST", "/v1/netlists", handle_publish_netlist),
    Route("POST", "/v1/artifacts/{digest}/pin", handle_pin),
    Route("POST", "/v1/artifacts/{digest}/unpin", handle_unpin),
    Route("GET", "/v1/status", handle_status),
]


class Gateway:
    """The multi-tenant evaluation server.  See the module docstring.

    ``start()`` brings up the executor thread, the event-apply
    thread, and the asyncio HTTP server (on its own thread) and
    returns ``(host, port)`` — with ``port=0`` an ephemeral port is
    chosen, which is what tests and the load benchmark use.
    ``shutdown()`` drains: stops accepting, cancels live jobs, shuts
    the worker pool down (no orphan processes), and closes the bus so
    every SSE stream ends.
    """

    def __init__(self, store: ArtifactStore,
                 registry: TenantRegistry,
                 rundb: Optional[RunDatabase] = None,
                 workers: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 pool: Optional[WorkerPool] = None) -> None:
        if workers < 1 and pool is None:
            raise ValueError("gateway needs at least one worker")
        self.store = store
        self.rundb = rundb
        self.registry = registry
        self.workers = pool.size if pool is not None else workers
        self.host = host
        self.port = port
        self.bus = EventBus()
        self.scheduler = Scheduler(
            workers=workers, store=store, rundb=rundb, pool=pool,
            run_id="gateway", bus=self.bus)
        self._lock = threading.RLock()
        self._jobs: Dict[str, _JobView] = {}
        self._submissions: Dict[str, _Submission] = {}
        self._tenant_state: Dict[str, _TenantState] = {
            t.name: _TenantState(t, TokenBucket(t.rate, t.burst))
            for t in registry.tenants()}
        self._counter = itertools.count(1)
        self._commands: "queue.SimpleQueue" = queue.SimpleQueue()
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        self._stop = threading.Event()
        self._started = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor = threading.Thread(
            target=self._executor_main, name="gw-executor", daemon=True)
        self._applier = threading.Thread(
            target=self._apply_events, name="gw-events", daemon=True)
        # Pool respawns fork while client connections are open; the
        # child would inherit duplicate connection fds and keep them
        # open past the server's close (no EOF ever reaches the
        # client).  This hook runs in every forked child and drops
        # the inherited copies.
        self._client_socks: Set[object] = set()
        multiprocessing.util.register_after_fork(
            self, Gateway._close_inherited_sockets)

    def _close_inherited_sockets(self) -> None:
        for sock in list(self._client_socks):
            try:
                sock.close()
            except OSError:
                pass
        server = self._server
        for sock in (server.sockets if server is not None else []):
            try:
                sock.close()
            except OSError:
                pass

    # -- lifecycle -----------------------------------------------------

    def start(self) -> Tuple[str, int]:
        """Serve; returns the bound (host, port)."""
        if self._started:
            return self.host, self.port
        self._restore_grants()
        self._applier.start()
        self._executor.start()
        self._loop = asyncio.new_event_loop()
        loop_ready = threading.Event()

        def run_loop() -> None:
            asyncio.set_event_loop(self._loop)
            loop_ready.set()
            self._loop.run_forever()

        self._loop_thread = threading.Thread(
            target=run_loop, name="gw-http", daemon=True)
        self._loop_thread.start()
        loop_ready.wait()
        fut = asyncio.run_coroutine_threadsafe(
            self._start_server(), self._loop)
        fut.result(timeout=10.0)
        self._started = True
        return self.host, self.port

    async def _start_server(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_conn, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]

    def shutdown(self) -> None:
        """Drain and stop: no requests, no live jobs, no workers."""
        if not self._started:
            return
        self._started = False
        # 1. Stop accepting connections.
        fut = asyncio.run_coroutine_threadsafe(
            self._close_server(), self._loop)
        try:
            fut.result(timeout=5.0)
        except Exception:   # noqa: BLE001 — best-effort teardown
            pass
        # 2. Stop the executor: it cancels live jobs (emitting their
        #    terminal events) and shuts the pool down.
        self._stop.set()
        self._wake()
        self._executor.join(timeout=30.0)
        # 3. Close the bus: every SSE stream and the applier end.
        self.bus.close()
        self._applier.join(timeout=10.0)
        # 4. Cancel lingering connection handlers (idle keep-alive
        #    clients), then stop the HTTP loop.
        fut = asyncio.run_coroutine_threadsafe(
            self._cancel_handlers(), self._loop)
        try:
            fut.result(timeout=5.0)
        except Exception:   # noqa: BLE001 — best-effort teardown
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._loop_thread.join(timeout=5.0)
        if not self._loop_thread.is_alive():
            self._loop.close()
        for fd in (self._wake_r, self._wake_w):
            try:
                os.close(fd)
            except OSError:
                pass

    async def _cancel_handlers(self) -> None:
        tasks = [t for t in asyncio.all_tasks()
                 if t is not asyncio.current_task()]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    async def _close_server(self) -> None:
        if self._server is not None:
            self._server.close()
            try:
                await asyncio.wait_for(self._server.wait_closed(),
                                       timeout=2.0)
            except asyncio.TimeoutError:
                pass

    def __enter__(self) -> "Gateway":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- executor thread -----------------------------------------------

    def _wake(self) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _drain_wake(self) -> None:
        try:
            while os.read(self._wake_r, 4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _command_sync(self, cmd: Tuple) -> None:
        self._commands.put(cmd)
        self._wake()

    async def _command_reply(self, cmd: Tuple) -> Tuple[str, object]:
        """Send a command and await the executor's reply off-loop."""
        reply: "queue.SimpleQueue" = queue.SimpleQueue()
        self._command_sync(cmd + (reply,))
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, reply.get)

    def _executor_main(self) -> None:
        self.scheduler.service_open()
        try:
            while not self._stop.is_set():
                self._drain_wake()
                while True:
                    try:
                        cmd = self._commands.get_nowait()
                    except queue.Empty:
                        break
                    self._handle_command(cmd)
                idle = self.scheduler.service_step(
                    max_wait=0.5, extra=(self._wake_r,))
                if idle and not self._stop.is_set():
                    # Nothing live: block on the command queue instead
                    # of spinning through empty scheduling quanta.
                    try:
                        cmd = self._commands.get(timeout=0.25)
                    except queue.Empty:
                        continue
                    self._handle_command(cmd)
        finally:
            # Drain: withdraw everything still live (each cancel emits
            # its terminal event), then shut the pool down — after
            # this, no worker process of ours is left running.
            for job in list(self.scheduler.jobs.values()):
                if not job.done:
                    try:
                        self.scheduler.cancel(job.job_id)
                    except Exception:   # noqa: BLE001
                        pass
            self.scheduler.service_close()

    def _handle_command(self, cmd: Tuple) -> None:
        kind = cmd[0]
        if kind == "submit":
            _, entries, reply = cmd
            try:
                for spec, job_id, run_id in entries:
                    self.scheduler.submit(spec, job_id=job_id,
                                          run_id=run_id)
                reply.put(("ok", [e[1] for e in entries]))
            except Exception as exc:   # noqa: BLE001
                reply.put(("error", f"{exc}"))
        elif kind == "cancel":
            _, job_id, reply = cmd
            try:
                self.scheduler.cancel(job_id)
                reply.put(("ok", job_id))
            except Exception as exc:   # noqa: BLE001
                reply.put(("error", f"{exc}"))
        elif kind == "forget":
            for job_id in cmd[1]:
                try:
                    self.scheduler.forget(job_id)
                except Exception:   # noqa: BLE001
                    pass

    # -- event application ---------------------------------------------

    def _apply_events(self) -> None:
        sub = self.bus.subscribe()
        for event in sub:
            grants: Set[str] = set()
            forget: Optional[List[str]] = None
            unpin: List[Tuple[str, str]] = []
            with self._lock:
                view = self._jobs.get(event.job_id)
                if view is None or event.seq <= view.event.seq:
                    continue
                view.event = event
                if not event.terminal or view.terminal:
                    continue
                view.terminal = True
                state = self._tenant_state.get(view.tenant)
                if state is not None:
                    state.in_flight = max(0, state.in_flight - 1)
                submission = self._submissions.get(view.submission_id)
                if submission is not None:
                    submission.remaining -= 1
                    if submission.remaining <= 0:
                        forget = list(submission.job_ids)
                        unpin = [(d, tenant_pin_ref(
                            submission.tenant,
                            submission.submission_id))
                            for d in submission.pinned]
                if event.status == "succeeded" and event.spec_hash:
                    grants.add(event.spec_hash)
            if grants:
                # One-hop references (e.g. a closure job's published
                # layout) become visible with the result.  Store I/O
                # happens outside the lock.
                refs: Set[str] = set()
                for digest in grants:
                    refs |= self.store.referenced_digests(digest)
                with self._lock:
                    state = self._tenant_state.get(view.tenant)
                    if state is not None:
                        state.digests |= grants | refs
            for digest, ref in unpin:
                try:
                    self.store.unpin(digest, ref=ref)
                except (OSError, ValueError):
                    pass
            if forget:
                self._command_sync(("forget", forget))

    def _restore_grants(self) -> None:
        """Rebuild tenant artifact visibility from the run database.

        A restarted gateway must let tenants fetch results of jobs
        they ran before the restart: every succeeded record in a
        tenant's namespace re-grants its spec hash (and one-hop
        references).
        """
        if self.rundb is None:
            return
        for tenant in self.registry.tenants():
            view = NamespacedRunDatabase(self.rundb, tenant.name)
            granted: Set[str] = set()
            for rec in view.query(status="succeeded"):
                if not rec.spec_hash:
                    continue
                granted.add(rec.spec_hash)
                granted |= self.store.referenced_digests(rec.spec_hash)
            if granted:
                with self._lock:
                    self._tenant_state[tenant.name].digests |= granted

    # -- submission ----------------------------------------------------

    async def _submit(self, tenant: Tenant, specs: List[JobSpec],
                      pins: List[str], kind: str) -> Dict[str, object]:
        with self._lock:
            state = self._tenant_state[tenant.name]
            if state.in_flight + len(specs) > tenant.max_in_flight:
                raise GatewayError(
                    503, "quota_exceeded",
                    f"tenant {tenant.name!r} has {state.in_flight} "
                    f"jobs in flight; submitting {len(specs)} more "
                    f"would exceed max_in_flight="
                    f"{tenant.max_in_flight}")
            submission_id = f"s{next(self._counter):06d}"
            run_id = namespace_run_id(tenant.name, submission_id)
            entries = []
            for spec in specs:
                job_id = (f"g{next(self._counter):06d}"
                          f"-{spec.job_type}")
                entries.append((spec, job_id, run_id))
                self._jobs[job_id] = _JobView(
                    job_id=job_id, tenant=tenant.name,
                    submission_id=submission_id,
                    event=JobEvent(
                        job_id=job_id, status="pending",
                        job_type=spec.job_type,
                        spec_hash=spec.spec_hash, run_id=run_id))
            self._submissions[submission_id] = _Submission(
                submission_id=submission_id, tenant=tenant.name,
                kind=kind, job_ids=[e[1] for e in entries],
                pinned=list(pins), remaining=len(entries))
            state.in_flight += len(specs)
            state.digests |= {spec.spec_hash for spec in specs}
            state.digests |= set(pins)
        for digest in pins:
            self.store.pin(digest, ref=tenant_pin_ref(
                tenant.name, submission_id))
        status, payload = await self._command_reply(
            ("submit", entries))
        if status == "error":
            with self._lock:
                for _, job_id, _ in entries:
                    self._jobs.pop(job_id, None)
                self._submissions.pop(submission_id, None)
                state = self._tenant_state[tenant.name]
                state.in_flight = max(0,
                                      state.in_flight - len(entries))
            raise GatewayError(500, "internal",
                               f"submission failed: {payload}")
        return {
            "submission_id": submission_id,
            "run_id": submission_id,
            "kind": kind,
            "job_ids": [e[1] for e in entries],
            "spec_hashes": [e[0].spec_hash for e in entries],
        }

    # -- per-request helpers -------------------------------------------

    def _view_for(self, tenant: Tenant, job_id: str) -> _JobView:
        with self._lock:
            view = self._jobs.get(job_id)
            if view is None or view.tenant != tenant.name:
                # Another tenant's job is indistinguishable from an
                # absent one — no existence oracle across tenants.
                raise GatewayError(404, "not_found",
                                   f"no job {job_id!r}")
            return view

    @staticmethod
    def _checked_digest(digest: str) -> str:
        try:
            return validate_digest(digest)
        except ValueError as exc:
            raise GatewayError(400, "bad_request", str(exc)) from None

    @staticmethod
    def _checked_ref(ref: object) -> str:
        if not isinstance(ref, str) or not _USER_REF_OK.match(ref):
            raise GatewayError(
                400, "bad_request",
                f"invalid pin ref {ref!r}: letters, digits, '._@-', "
                "max 64 chars")
        return ref

    def _require_visible(self, tenant: Tenant, digest: str) -> None:
        with self._lock:
            if digest not in self._tenant_state[tenant.name].digests:
                raise GatewayError(404, "not_found",
                                   f"artifact {digest} not found")

    def _require_param_digests(self, tenant: Tenant,
                               spec: JobSpec) -> None:
        """Every digest-shaped param must be visible to the tenant."""
        refs: Set[str] = set()
        ArtifactStore._scan_refs(spec.params_dict, refs)
        for digest in sorted(refs):
            self._require_visible(tenant, digest)

    # -- HTTP layer ----------------------------------------------------

    async def _serve_conn(self, reader: asyncio.StreamReader,
                          writer: asyncio.StreamWriter) -> None:
        sock = writer.get_extra_info("socket")
        if sock is not None:
            self._client_socks.add(sock)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                if not keep:
                    break
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.TimeoutError):
            pass
        finally:
            self._client_socks.discard(sock)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader
                            ) -> Optional[Request]:
        line = await reader.readline()
        if not line or line in (b"\r\n", b"\n"):
            return None
        try:
            method, target, _version = line.decode(
                "latin-1").strip().split(" ", 2)
        except ValueError:
            return None
        headers: Dict[str, str] = {}
        while True:
            hline = await reader.readline()
            if hline in (b"\r\n", b"\n", b""):
                break
            name, sep, value = hline.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = 0
        if length > MAX_BODY_BYTES:
            raise GatewayError(413, "too_large",
                               f"body over {MAX_BODY_BYTES} bytes")
        raw = await reader.readexactly(length) if length > 0 else b""
        split = urllib.parse.urlsplit(target)
        query = {k: v[0] for k, v in
                 urllib.parse.parse_qs(split.query).items()}
        body: Dict[str, object] = {}
        if raw:
            try:
                body = json.loads(raw)
            except json.JSONDecodeError:
                raise GatewayError(400, "bad_request",
                                   "body is not valid JSON") from None
        return Request(method=method.upper(), path=split.path,
                       query=query, headers=headers, body=body)

    def _authenticate(self, request: Request) -> Tenant:
        token = request.headers.get("x-repro-token")
        if not token:
            auth = request.headers.get("authorization", "")
            if auth.lower().startswith("bearer "):
                token = auth[7:].strip()
        tenant = self.registry.authenticate(token)
        if tenant is None:
            raise GatewayError(401, "unauthenticated",
                               "missing or unknown tenant token")
        with self._lock:
            granted, retry_after = \
                self._tenant_state[tenant.name].bucket.try_acquire()
        if not granted:
            raise GatewayError(
                429, "rate_limited",
                f"tenant {tenant.name!r} over its request rate",
                retry_after=retry_after)
        return tenant

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> bool:
        try:
            path_routes = [r for r in ROUTES
                           if r.match(request.path) is not None]
            if not path_routes:
                raise GatewayError(404, "not_found",
                                   f"no route {request.path!r}")
            route = next((r for r in path_routes
                          if r.method == request.method), None)
            if route is None:
                raise GatewayError(
                    405, "method_not_allowed",
                    f"{request.method} not allowed on "
                    f"{request.path!r}; allowed: "
                    + ", ".join(sorted({r.method
                                        for r in path_routes})))
            tenant = self._authenticate(request)
            params = route.match(request.path)
            result = await route.handler(self, tenant, params,
                                         request.body, request.query)
            if route.kind == "sse":
                _, snapshot, sub = result
                await self._stream_sse(writer, snapshot, sub)
                return False
            status, payload = result
            await self._write_json(writer, status, payload)
            return request.headers.get("connection",
                                       "").lower() != "close"
        except GatewayError as exc:
            extra = {}
            if exc.retry_after is not None:
                extra["Retry-After"] = str(max(
                    1, int(exc.retry_after + 0.999)))
            await self._write_json(writer, exc.status, exc.payload(),
                                   extra)
            return exc.status < 500
        except (ConnectionError, asyncio.IncompleteReadError):
            raise
        except Exception:   # noqa: BLE001 — the 500 of last resort
            err = GatewayError(500, "internal",
                               traceback.format_exc(limit=3))
            await self._write_json(writer, err.status, err.payload())
            return False

    @staticmethod
    async def _write_json(writer: asyncio.StreamWriter, status: int,
                          payload: Dict[str, object],
                          extra_headers: Optional[Dict[str, str]] = None
                          ) -> None:
        body = json.dumps(payload, separators=(",", ":")).encode()
        reason = {200: "OK", 201: "Created", 202: "Accepted",
                  400: "Bad Request", 401: "Unauthorized",
                  404: "Not Found", 405: "Method Not Allowed",
                  409: "Conflict", 413: "Payload Too Large",
                  429: "Too Many Requests", 500: "Internal Server Error",
                  503: "Service Unavailable"}.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}",
                "Content-Type: application/json",
                f"Content-Length: {len(body)}"]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        await writer.drain()

    async def _stream_sse(self, writer: asyncio.StreamWriter,
                          snapshot: JobEvent, sub) -> None:
        """Serve one job's event stream until its terminal transition.

        The snapshot is sent first; the subscription (replaying
        history after the snapshot's sequence number) supplies every
        later transition exactly once.  A waiting read times out
        twice a second to emit a keep-alive comment — which is also
        how a vanished client is detected promptly.
        """
        loop = asyncio.get_running_loop()
        try:
            writer.write(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: text/event-stream\r\n"
                         b"Cache-Control: no-store\r\n"
                         b"Connection: close\r\n\r\n")
            event: Optional[JobEvent] = snapshot
            while True:
                if event is not None:
                    data = json.dumps(event.to_dict(),
                                      separators=(",", ":"))
                    writer.write(b"event: job\ndata: "
                                 + data.encode() + b"\n\n")
                    await writer.drain()
                    if event.terminal:
                        break
                event = await loop.run_in_executor(
                    None, sub.get, 0.5)
                if event is None:
                    if sub.closed:
                        break
                    writer.write(b": keep-alive\n\n")
                    await writer.drain()
        finally:
            sub.close()
