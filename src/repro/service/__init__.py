"""Flow execution service: artifact store, scheduler, run database.

The paper's Sec. IV agenda — security evaluation at every stage, with
cross-effect composition studies — means running *many* flow variants
over *many* designs.  This package turns the repository's flow engine
into a job-serving layer:

* :mod:`~repro.service.store` — content-addressed on-disk artifact
  store; identical flows are cache hits across processes and
  invocations;
* :mod:`~repro.service.jobs` — declarative, picklable job specs
  resolved through a registry, hash-stable for cache addressing;
* :mod:`~repro.service.scheduler` — multiprocess DAG execution with
  per-job timeouts, bounded retry-with-backoff, crash isolation,
  cancellation, and in-process degradation at ``workers=0``;
* :mod:`~repro.service.rundb` — append-only JSONL log of every job
  outcome with a query API;
* :mod:`~repro.service.campaigns` — existing workloads (locking
  sweep, composition matrix, security closure) routed through the
  service with serial result parity;
* :mod:`~repro.service.events` — the job event bus behind both CLI
  ``--watch`` output and gateway SSE streams;
* :mod:`~repro.service.tenants` — tenant identity, rate limits, and
  namespaced run-database / pin views for the gateway;
* :mod:`~repro.service.gateway` / :mod:`~repro.service.client` — the
  multi-tenant HTTP evaluation gateway and its blocking client
  (imported lazily; ``from repro.service.gateway import Gateway``);
* ``python -m repro.service`` — submit, watch, inspect, and
  ``serve``.
"""

from .store import ArtifactStore, GcReport, result_key, validate_digest
from .rundb import (
    JsonlRunDatabase,
    RunDatabase,
    RunRecord,
    SqliteRunDatabase,
    migrate_jsonl,
    render_records,
)
from .jobs import (
    JobContext,
    JobSpec,
    JobType,
    evaluate_variants,
    job_function,
    register_job_type,
    registered_job_types,
    run_job,
)
from .scheduler import (
    CANCELLED,
    FAILED,
    PENDING,
    RUNNING,
    SKIPPED,
    SUCCEEDED,
    TIMEOUT,
    Job,
    Scheduler,
    SchedulerError,
    WorkerPool,
)
from .campaigns import (
    BENCH_CIRCUITS,
    DEFAULT_STACKS,
    CampaignError,
    composition_matrix_campaign,
    locking_sweep_campaign,
    security_closure_campaign,
    variant_sweep_campaign,
)
from .events import EventBus, JobEvent, Subscription, format_event
from .tenants import (
    NamespacedRunDatabase,
    Tenant,
    TenantRegistry,
    TokenBucket,
    namespace_run_id,
    split_run_id,
    tenant_pin_ref,
)

__all__ = [
    "ArtifactStore", "GcReport", "result_key", "validate_digest",
    "RunDatabase", "JsonlRunDatabase", "SqliteRunDatabase",
    "RunRecord", "render_records", "migrate_jsonl",
    "JobContext", "JobSpec", "JobType", "evaluate_variants",
    "job_function", "register_job_type", "registered_job_types", "run_job",
    "Job", "Scheduler", "SchedulerError", "WorkerPool",
    "PENDING", "RUNNING", "SUCCEEDED", "FAILED", "TIMEOUT",
    "CANCELLED", "SKIPPED",
    "BENCH_CIRCUITS", "DEFAULT_STACKS", "CampaignError",
    "composition_matrix_campaign", "locking_sweep_campaign",
    "security_closure_campaign", "variant_sweep_campaign",
    "EventBus", "JobEvent", "Subscription", "format_event",
    "Tenant", "TenantRegistry", "TokenBucket",
    "NamespacedRunDatabase", "namespace_run_id", "split_run_id",
    "tenant_pin_ref",
]
