"""Job event bus: push-based state streaming for CLI watch and SSE.

The scheduler publishes a :class:`JobEvent` at every job state
transition.  Anything that wants to observe a run — the CLI's
``--watch`` mode, a gateway SSE stream, the gateway's own job table —
subscribes and *receives* events instead of polling scheduler state.
One implementation serves every consumer, which is what keeps the CLI
watch output and the gateway's event stream in lockstep: both render
the same :class:`JobEvent` sequence, one as text
(:func:`format_event`), one as JSON (:meth:`JobEvent.to_dict`).

Threading model: ``publish`` may be called from any thread (the
scheduler's executor thread, an inline run on the main thread);
subscribers drain their own :class:`queue.SimpleQueue` from whatever
thread (or event loop, via an executor) they like.  A bounded history
ring lets late subscribers replay what they missed — the gateway's
SSE handler attaches *after* a job was submitted and still sees its
earlier transitions.  Events carry a process-wide monotonically
increasing ``seq`` so replay and live delivery can be deduplicated.
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import deque
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

#: Process-global sequence numbers: two buses (or two schedulers on
#: one bus) can never hand out colliding or non-monotonic sequence
#: numbers, so consumers can always dedupe on ``seq`` alone.
_SEQ = itertools.count(1)
_SEQ_LOCK = threading.Lock()


def _next_seq() -> int:
    with _SEQ_LOCK:
        return next(_SEQ)


@dataclass(frozen=True)
class JobEvent:
    """One job state transition, as published by the scheduler.

    ``result`` is populated only on a successful terminal transition —
    subscribers that just render status lines ignore it, while the
    gateway's job table keeps it so a client can fetch the result
    without a second trip through the artifact store.
    """

    job_id: str
    status: str
    job_type: str = ""
    spec_hash: str = ""
    attempts: int = 0
    cache_hit: bool = False
    wall_s: float = 0.0
    worker: str = ""
    error: str = ""
    run_id: str = ""
    result: Optional[object] = None
    seq: int = field(default_factory=_next_seq)

    @property
    def terminal(self) -> bool:
        return self.status in ("succeeded", "failed", "timeout",
                               "cancelled", "skipped")

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form (the SSE ``data:`` payload)."""
        return asdict(self)

    @classmethod
    def from_job(cls, job, run_id: str = "",
                 with_result: bool = False) -> "JobEvent":
        """Build an event from a scheduler :class:`~.scheduler.Job`."""
        return cls(
            job_id=job.job_id, status=job.status,
            job_type=job.spec.job_type, spec_hash=job.spec.spec_hash,
            attempts=job.attempts, cache_hit=job.cache_hit,
            wall_s=job.wall_s, worker=job.worker, error=job.error,
            run_id=run_id,
            result=job.result if with_result else None)


def format_event(event: JobEvent) -> str:
    """The CLI watch line for one event.

    This is the historical ``--watch`` output format, byte for byte:
    porting watch from a scheduler callback to the bus must not change
    what users (and log scrapers) see.
    """
    cache = " (cache)" if event.cache_hit else ""
    extra = (f" — {event.error.splitlines()[-1][:60]}"
             if event.error and event.status in
             ("failed", "timeout", "pending") else "")
    return (f"[{event.status:>9}] {event.job_id} "
            f"attempt={event.attempts}{cache}{extra}")


class Subscription:
    """One subscriber's queue-backed view of a bus.

    Iterating yields events until the subscription (or its bus) is
    closed; :meth:`get` gives timeout-controlled access for consumers
    that must interleave with other work (the SSE writer checking for
    client disconnects).  Closing is idempotent and unblocks any
    waiting reader via a sentinel.
    """

    _CLOSE = object()

    def __init__(self, bus: "EventBus",
                 job_ids: Optional[Sequence[str]] = None) -> None:
        self._bus = bus
        self._queue: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        self._job_ids = frozenset(job_ids) if job_ids is not None \
            else None
        self._closed = False

    def _wants(self, event: JobEvent) -> bool:
        return self._job_ids is None or event.job_id in self._job_ids

    def _deliver(self, event: JobEvent) -> None:
        if not self._closed and self._wants(event):
            self._queue.put(event)

    def get(self, timeout: Optional[float] = None
            ) -> Optional[JobEvent]:
        """Next event, ``None`` on timeout or once closed and drained."""
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return None
        if item is self._CLOSE:
            self._closed = True
            return None
        return item    # type: ignore[return-value]

    def close(self) -> None:
        """Detach from the bus and unblock any waiting reader."""
        self._bus._detach(self)
        self._queue.put(self._CLOSE)

    @property
    def closed(self) -> bool:
        return self._closed

    def __iter__(self) -> Iterator[JobEvent]:
        while True:
            event = self.get()
            if event is None and self._closed:
                return
            if event is not None:
                yield event


class EventBus:
    """Publish/subscribe fan-out of :class:`JobEvent` transitions.

    ``history`` bounds the replay ring: a subscriber created with
    ``replay=True`` first receives (matching) retained events in
    publication order, then live ones.  The ring is a memory bound,
    not a durability promise — the run database is the system of
    record; the bus is the low-latency push path.
    """

    def __init__(self, history: int = 4096) -> None:
        self._lock = threading.Lock()
        self._subs: List[Subscription] = []
        self._history: "deque[JobEvent]" = deque(maxlen=max(0, history))
        self._closed = False

    def publish(self, event: JobEvent) -> None:
        """Fan ``event`` out to subscribers (thread-safe, non-blocking)."""
        with self._lock:
            if self._closed:
                return
            self._history.append(event)
            subs = list(self._subs)
        for sub in subs:
            sub._deliver(event)

    def subscribe(self, job_ids: Optional[Sequence[str]] = None,
                  replay: bool = False,
                  after_seq: int = 0) -> Subscription:
        """Attach a subscriber, optionally replaying retained history.

        ``job_ids`` filters delivery to those jobs; ``replay`` first
        enqueues retained events with ``seq > after_seq`` — the SSE
        resume path (a client reconnecting with a last-seen sequence
        number sees each transition exactly once).
        """
        sub = Subscription(self, job_ids=job_ids)
        with self._lock:
            backlog = [e for e in self._history
                       if replay and e.seq > after_seq]
            self._subs.append(sub)
        for event in backlog:
            sub._deliver(event)
        if self._closed:
            sub.close()
        return sub

    def _detach(self, sub: Subscription) -> None:
        with self._lock:
            try:
                self._subs.remove(sub)
            except ValueError:
                pass

    def history(self, job_id: Optional[str] = None) -> List[JobEvent]:
        """Retained events (optionally one job's), oldest first."""
        with self._lock:
            return [e for e in self._history
                    if job_id is None or e.job_id == job_id]

    def close(self) -> None:
        """Close every subscription; further publishes are dropped."""
        with self._lock:
            self._closed = True
            subs = list(self._subs)
        for sub in subs:
            sub.close()
