"""Campaign clients: existing workloads routed through the service.

A *campaign* is a family of independent flow evaluations — the
locking sweep from :mod:`repro.core.dse`, the composition cross-effect
matrix from :mod:`repro.core.composition`, benchmark fan-out — turned
into job specs and drained through the scheduler.  Every client here
guarantees **result parity**: the deterministic fields of a campaign
run with ``workers=N`` are identical to the serial implementation,
point for point, because both call the same per-item kernels on the
same (round-tripped) inputs.
"""

from __future__ import annotations

import contextlib
import tempfile
from typing import Callable, Dict, Iterator, List, Optional, Sequence

from ..core.dse import LockingSweepPoint
from ..netlist import Netlist, c17, ripple_carry_adder
from .events import EventBus
from .jobs import JobSpec
from .rundb import RunDatabase
from .scheduler import SUCCEEDED, Scheduler, WorkerPool
from .store import ArtifactStore


def _present_sbox() -> Netlist:
    from ..crypto import present_sbox_netlist

    return present_sbox_netlist()


#: Named benchmark circuits reachable from the CLI and the gateway.
#: Shared so a gateway campaign and its CLI twin build byte-identical
#: input netlists (and therefore identical spec hashes).
BENCH_CIRCUITS: Dict[str, Callable[[], Netlist]] = {
    "c17": c17,
    "rca8": lambda: ripple_carry_adder(8),
    "rca16": lambda: ripple_carry_adder(16),
    "present-sbox": _present_sbox,
}


class CampaignError(Exception):
    """Raised when a campaign finishes with failed jobs."""

    def __init__(self, message: str, jobs: Dict[str, object]) -> None:
        super().__init__(message)
        self.jobs = jobs


def _campaign_store(store: Optional[ArtifactStore]) -> ArtifactStore:
    """The caller's store, or a throwaway one for a single campaign.

    Workers exchange inputs and results through the store, so even a
    cache-less campaign needs a shared directory; an ephemeral one
    under the system temp root serves (and demonstrates) that without
    polluting a real cache.
    """
    if store is not None:
        return store
    return ArtifactStore(tempfile.mkdtemp(prefix="repro-service-"))


@contextlib.contextmanager
def _pinned_inputs(store: ArtifactStore, digests: Sequence[str],
                   ref: str) -> Iterator[None]:
    """Pin campaign inputs under ``ref`` for the duration of the run.

    Input netlists are published before any job runs and may sit idle
    longer than a GC grace window on a long campaign; a run-scoped pin
    makes them explicit GC roots until the campaign returns.
    """
    for digest in digests:
        store.pin(digest, ref=ref)
    try:
        yield
    finally:
        for digest in digests:
            store.unpin(digest, ref=ref)


def _raise_on_failures(jobs: Dict[str, object], what: str) -> None:
    bad = {job_id: job for job_id, job in jobs.items()
           if job.status != SUCCEEDED}
    if bad:
        details = "; ".join(
            f"{job_id}: {job.status}"
            f"{' — ' + job.error.splitlines()[-1] if job.error else ''}"
            for job_id, job in list(bad.items())[:5])
        raise CampaignError(
            f"{what}: {len(bad)} of {len(jobs)} jobs did not succeed "
            f"({details})", jobs)


def locking_sweep_campaign(netlist: Netlist,
                           key_widths: Sequence[int],
                           seed: int = 0,
                           max_iterations: int = 400,
                           workers: int = 0,
                           store: Optional[ArtifactStore] = None,
                           rundb: Optional[RunDatabase] = None,
                           timeout: Optional[float] = None,
                           retries: int = 1,
                           pool: Optional[WorkerPool] = None,
                           persistent: bool = True,
                           bus: Optional[EventBus] = None
                           ) -> List[LockingSweepPoint]:
    """:func:`repro.core.dse.sweep_locking` as a service campaign.

    One ``locking-point`` job per key width (the width-0 baseline is a
    job like any other — seed threaded uniformly), fanned out over
    ``workers`` processes.  Deterministic fields (key bits, area, DIP
    iterations, gave-up flag) are bit-identical to the serial sweep;
    ``attack_seconds`` is wall time and — uniquely — honest about
    where the work actually ran.  ``persistent=False`` selects the
    fork-per-job dispatch (the warm-pool benchmark's baseline).
    """
    store = _campaign_store(store)
    input_hash = store.put_netlist(netlist)
    scheduler = Scheduler(workers=workers, store=store, rundb=rundb,
                          pool=pool, persistent=persistent, bus=bus)
    job_ids = []
    for bits in key_widths:
        spec = JobSpec(
            "locking-point",
            params={"netlist": input_hash, "key_bits": int(bits),
                    "max_iterations": int(max_iterations)},
            seed=seed, timeout=timeout, retries=retries)
        job_ids.append(scheduler.submit(spec))
    with _pinned_inputs(store, [input_hash], scheduler.run_id):
        jobs = scheduler.run()
    _raise_on_failures(jobs, "locking sweep")
    points = []
    for job_id in job_ids:
        row = jobs[job_id].result
        points.append(LockingSweepPoint(
            key_bits=int(row["key_bits"]),
            area=float(row["area"]),
            sat_attack_iterations=int(row["sat_attack_iterations"]),
            attack_seconds=float(row["attack_seconds"]),
            attack_gave_up=bool(row["attack_gave_up"]),
        ))
    return points


def security_closure_campaign(netlists: Sequence[Netlist],
                              thresholds: Optional[Dict[str, float]] = None,
                              num_layers: Optional[int] = None,
                              max_iterations: int = 4,
                              placement_iterations: int = 2000,
                              seed: int = 0,
                              workers: int = 0,
                              store: Optional[ArtifactStore] = None,
                              rundb: Optional[RunDatabase] = None,
                              timeout: Optional[float] = None,
                              retries: int = 1,
                              pool: Optional[WorkerPool] = None,
                              bus: Optional[EventBus] = None
                              ) -> Dict[str, Dict[str, object]]:
    """Security-close a batch of designs: one ``closure`` job each.

    Each design runs the full place -> route -> analyse -> ECO loop of
    :func:`repro.physical.closure.security_closure` independently, so
    a design-suite closure parallelizes embarrassingly.  Returns
    design name -> closure result dict (wall times already stripped by
    the job, so the mapping is bit-identical across worker counts).
    """
    thresholds = dict(thresholds
                      or {"probing": 0.05, "fia": 0.30, "trojan": 0.05})
    store = _campaign_store(store)
    scheduler = Scheduler(workers=workers, store=store, rundb=rundb,
                          pool=pool, bus=bus)
    job_ids = {}
    input_hashes = []
    for netlist in netlists:
        input_hash = store.put_netlist(netlist)
        input_hashes.append(input_hash)
        spec = JobSpec(
            "closure",
            params={"netlist": input_hash,
                    "thresholds": thresholds,
                    "num_layers": num_layers,
                    "max_iterations": int(max_iterations),
                    "placement_iterations": int(placement_iterations)},
            seed=seed, timeout=timeout, retries=retries)
        job_ids[netlist.name] = scheduler.submit(spec)
    with _pinned_inputs(store, input_hashes, scheduler.run_id):
        jobs = scheduler.run()
    _raise_on_failures(jobs, "security closure")
    return {name: jobs[job_id].result
            for name, job_id in job_ids.items()}


def variant_sweep_campaign(netlist: Netlist,
                           variants: Sequence[object],
                           n_vectors: int = 64,
                           seed: int = 0,
                           workers: int = 0,
                           store: Optional[ArtifactStore] = None,
                           rundb: Optional[RunDatabase] = None,
                           timeout: Optional[float] = None,
                           retries: int = 1,
                           batch: bool = True,
                           pool: Optional[WorkerPool] = None,
                           bus: Optional[EventBus] = None
                           ) -> List[Dict[str, object]]:
    """Score a family of design variants through the service.

    Every variant's artifact-cache key is its individual
    ``variant-eval`` spec hash — batching is an execution detail, not
    part of the addressed computation.  The campaign first serves
    variants already cached (whether an earlier run scored them
    serially or batched), then submits only the misses: one
    ``variant-batch`` job covering all of them when ``batch`` is true
    (the job publishes each per-variant result under its
    ``variant-eval`` hash), or one ``variant-eval`` job per variant
    otherwise.  Results come back in variant order and are
    bit-identical across strategies, worker counts, and cache states.

    ``variants`` may hold :class:`~repro.netlist.VariantSpec` objects
    or their dict form.
    """
    from ..netlist import VariantSpec

    store = _campaign_store(store)
    input_hash = store.put_netlist(netlist)
    canonical = [
        (v if isinstance(v, VariantSpec)
         else VariantSpec.from_dict(v)).to_dict()
        for v in variants
    ]
    eval_specs = [
        JobSpec("variant-eval",
                params={"netlist": input_hash, "variant": variant,
                        "n_vectors": int(n_vectors)},
                seed=seed, timeout=timeout, retries=retries)
        for variant in canonical
    ]
    results: List[Optional[Dict[str, object]]] = [None] * len(canonical)
    misses = []
    for i, spec in enumerate(eval_specs):
        payload = store.get(spec.spec_hash)
        if isinstance(payload, dict) and "result" in payload:
            results[i] = payload["result"]
        else:
            misses.append(i)
    if misses:
        scheduler = Scheduler(workers=workers, store=store, rundb=rundb,
                              pool=pool, bus=bus)
        if batch and len(misses) > 1:
            spec = JobSpec(
                "variant-batch",
                params={"netlist": input_hash,
                        "variants": [canonical[i] for i in misses],
                        "n_vectors": int(n_vectors)},
                seed=seed, timeout=timeout, retries=retries)
            job_id = scheduler.submit(spec)
            with _pinned_inputs(store, [input_hash], scheduler.run_id):
                jobs = scheduler.run()
            _raise_on_failures(jobs, "variant sweep")
            for i, result in zip(misses, jobs[job_id].result["results"]):
                results[i] = result
        else:
            job_ids = {i: scheduler.submit(eval_specs[i]) for i in misses}
            with _pinned_inputs(store, [input_hash], scheduler.run_id):
                jobs = scheduler.run()
            _raise_on_failures(jobs, "variant sweep")
            for i, job_id in job_ids.items():
                results[i] = jobs[job_id].result
    return results


#: The cross-effect matrix evaluated by the composition benchmarks.
DEFAULT_STACKS: Dict[str, List[str]] = {
    "duplication": ["duplication"],
    "parity": ["parity"],
    "wddl": ["wddl"],
}


def composition_matrix_campaign(
        design: str = "masked-and",
        stacks: Optional[Dict[str, Sequence[str]]] = None,
        engine_params: Optional[Dict[str, object]] = None,
        seed: int = 1,
        workers: int = 0,
        store: Optional[ArtifactStore] = None,
        rundb: Optional[RunDatabase] = None,
        timeout: Optional[float] = None,
        retries: int = 1,
        pool: Optional[WorkerPool] = None,
        bus: Optional[EventBus] = None) -> Dict[str, Dict[str, object]]:
    """Cross-effect matrix: one ``composition-stack`` job per stack.

    The serial equivalent walks the stacks one at a time through
    :meth:`~repro.core.composition.CompositionEngine.compose`; here
    every stack is an independent job (they share nothing but the
    design factory name), so the matrix parallelizes embarrassingly.
    Returns stack label -> cross-effect row
    (see :meth:`~repro.core.composition.CompositionEngine.
    evaluate_stack_row`).
    """
    stacks = dict(stacks if stacks is not None else DEFAULT_STACKS)
    engine_params = dict(engine_params or
                         {"n_traces": 4000, "noise_sigma": 0.25})
    store = _campaign_store(store)
    scheduler = Scheduler(workers=workers, store=store, rundb=rundb,
                          pool=pool, bus=bus)
    job_ids = {}
    for label, stack in stacks.items():
        spec = JobSpec(
            "composition-stack",
            params={"design": design, "stack": list(stack),
                    "engine": engine_params},
            seed=seed, timeout=timeout, retries=retries)
        job_ids[label] = scheduler.submit(spec)
    jobs = scheduler.run()
    _raise_on_failures(jobs, "composition matrix")
    return {label: jobs[job_id].result
            for label, job_id in job_ids.items()}
