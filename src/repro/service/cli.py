"""``python -m repro.service`` — submit, watch, inspect, and serve.

Subcommands::

    sweep    submit a locking-sweep campaign and print the points
    compose  submit a composition cross-effect campaign
    closure  security-close benchmark designs and print the metrics
    serve    run the multi-tenant HTTP evaluation gateway
    jobs     query the run database (filter by run / type / status)
    runs     list run ids with per-run summaries
    summary  aggregate run-database statistics
    migrate  copy a JSONL run database into an indexed SQLite one
    store    artifact-store statistics
    gc       collect unpinned, unreferenced artifacts (--dry-run)
    pin      pin an artifact digest under a named ref
    unpin    drop a pin ref from an artifact digest

Campaign commands accept ``--workers N`` (0 = in-process), a
``--store`` directory for the persistent artifact cache, and a
``--db`` path for the run database (``.jsonl`` keeps the legacy
line-oriented log; anything else is SQLite); ``--watch`` streams job
state transitions as the scheduler makes them — over the same
:mod:`~repro.service.events` bus the gateway's SSE streams use.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import threading
from typing import Iterator, Optional

from .campaigns import (
    BENCH_CIRCUITS,
    DEFAULT_STACKS,
    composition_matrix_campaign,
    locking_sweep_campaign,
    security_closure_campaign,
)
from .events import EventBus, format_event
from .rundb import RunDatabase, migrate_jsonl, render_records
from .store import ArtifactStore


@contextlib.contextmanager
def _watching(enabled: bool) -> Iterator[Optional[EventBus]]:
    """An event bus printing watch lines, or None when not watching.

    One subscriber thread renders every published event with
    :func:`~repro.service.events.format_event` — the same event
    stream (and the same line format) a gateway SSE client sees.
    """
    if not enabled:
        yield None
        return
    bus = EventBus()
    sub = bus.subscribe()

    def printer() -> None:
        for event in sub:
            print(format_event(event), flush=True)

    thread = threading.Thread(target=printer, name="cli-watch",
                              daemon=True)
    thread.start()
    try:
        yield bus
    finally:
        bus.close()
        thread.join(timeout=5.0)


def _open_db(args) -> Optional[RunDatabase]:
    return RunDatabase(args.db) if args.db else None


def _open_store(args) -> Optional[ArtifactStore]:
    return ArtifactStore(args.store) if args.store else None


def cmd_sweep(args) -> int:
    try:
        make = BENCH_CIRCUITS[args.bench]
    except KeyError:
        print(f"unknown bench {args.bench!r}; choose from "
              f"{sorted(BENCH_CIRCUITS)}")
        return 2
    widths = [int(w) for w in args.widths.split(",") if w != ""]
    with _watching(args.watch) as bus:
        points = locking_sweep_campaign(
            make(), widths, seed=args.seed,
            max_iterations=args.max_iterations, workers=args.workers,
            store=_open_store(args), rundb=_open_db(args),
            timeout=args.timeout, bus=bus)
    print(f"\n=== locking sweep: {args.bench} "
          f"(seed {args.seed}, workers {args.workers}) ===")
    print(f"{'key bits':>8} {'area':>8} {'DIP iters':>10} "
          f"{'attack (s)':>11} {'gave up':>8}")
    for p in points:
        print(f"{p.key_bits:>8} {p.area:>8.1f} "
              f"{p.sat_attack_iterations:>10} {p.attack_seconds:>11.3f} "
              f"{str(p.attack_gave_up):>8}")
    return 0


def cmd_compose(args) -> int:
    stacks = None
    if args.stacks:
        labels = [s for s in args.stacks.split(",") if s != ""]
        unknown = [s for s in labels if s not in DEFAULT_STACKS]
        if unknown:
            print(f"unknown stack(s) {unknown}; choose from "
                  f"{sorted(DEFAULT_STACKS)}")
            return 2
        stacks = {label: DEFAULT_STACKS[label] for label in labels}
    with _watching(args.watch) as bus:
        matrix = composition_matrix_campaign(
            design=args.design, stacks=stacks,
            engine_params={"n_traces": args.traces,
                           "noise_sigma": args.noise},
            seed=args.seed, workers=args.workers,
            store=_open_store(args), rundb=_open_db(args),
            timeout=args.timeout, bus=bus)
    print(f"\n=== composition matrix: {args.design} "
          f"(workers {args.workers}) ===")
    print(f"{'stack':<16} {'TVLA |t| in':>12} {'out':>8} "
          f"{'FIA cov in':>11} {'out':>6} {'area x':>7} {'flagged':>8}")
    for label, row in matrix.items():
        print(f"{label:<16} {row['baseline']['tvla_max_t']:>12.2f} "
              f"{row['final']['tvla_max_t']:>8.2f} "
              f"{row['baseline']['fia_coverage']:>11.2f} "
              f"{row['final']['fia_coverage']:>6.2f} "
              f"{row['area_factor']:>7.2f} "
              f"{str(row['flagged']):>8}")
        for note in row["notes"]:
            print(f"  !! {note}")
    return 0


def cmd_closure(args) -> int:
    labels = [b for b in args.benches.split(",") if b != ""]
    unknown = [b for b in labels if b not in BENCH_CIRCUITS]
    if unknown:
        print(f"unknown bench(es) {unknown}; choose from "
              f"{sorted(BENCH_CIRCUITS)}")
        return 2
    with _watching(args.watch) as bus:
        results = security_closure_campaign(
            [BENCH_CIRCUITS[label]() for label in labels],
            thresholds={"probing": args.probing, "fia": args.fia,
                        "trojan": args.trojan},
            num_layers=args.layers, max_iterations=args.max_iterations,
            seed=args.seed, workers=args.workers,
            store=_open_store(args), rundb=_open_db(args),
            timeout=args.timeout, bus=bus)
    print(f"\n=== security closure (seed {args.seed}, "
          f"workers {args.workers}) ===")
    print(f"{'design':<16} {'closed':>6} {'iters':>5} "
          f"{'probing':>15} {'FIA':>15} {'trojan':>15} "
          f"{'CEC':>5} {'area x':>7}")
    for name, row in results.items():
        def arrow(metric):
            return (f"{row['initial_metrics'][metric]:.3f}"
                    f"->{row['metrics'][metric]:.3f}")
        print(f"{name:<16} {str(row['converged']):>6} "
              f"{row['iterations']:>5} {arrow('probing'):>15} "
              f"{arrow('fia'):>15} {arrow('trojan'):>15} "
              f"{str(row['equivalent']):>5} "
              f"{1.0 + row['area_overhead']:>7.2f}")
        for net in row["failed_nets"]:
            print(f"  !! unrouted net {net}")
    return 0


def cmd_jobs(args) -> int:
    if not args.db:
        print("jobs requires --db")
        return 2
    db = RunDatabase(args.db)
    records = db.query(run_id=args.run, job_type=args.type,
                       status=args.status,
                       cache_hit=(None if args.cache is None
                                  else args.cache == "hit"))
    print(render_records(records))
    return 0


def cmd_runs(args) -> int:
    if not args.db:
        print("runs requires --db")
        return 2
    db = RunDatabase(args.db)
    run_ids = db.run_ids()
    if not run_ids:
        print("(no runs)")
        return 0
    for run_id in run_ids:
        s = db.summary(run_id)
        statuses = ", ".join(f"{k}={v}"
                             for k, v in sorted(s["by_status"].items()))
        print(f"{run_id}: {s['records']} jobs ({statuses}), "
              f"cache {s['cache_hit_rate']:.0%}, "
              f"{s['total_wall_s']:.2f}s wall")
    return 0


def cmd_summary(args) -> int:
    if not args.db:
        print("summary requires --db")
        return 2
    print(json.dumps(RunDatabase(args.db).summary(run_id=args.run),
                     indent=2, sort_keys=True))
    return 0


def cmd_store(args) -> int:
    if not args.store:
        print("store requires --store")
        return 2
    store = ArtifactStore(args.store)
    count = len(store)
    pinned = len(store.pinned_digests())
    print(f"store {store.root}: {count} artifacts "
          f"({pinned} pinned), {store.total_bytes()} bytes")
    return 0


def cmd_migrate(args) -> int:
    if not args.db:
        print("migrate requires --db (the JSONL source)")
        return 2
    try:
        count = migrate_jsonl(args.db, args.dest)
    except ValueError as exc:
        print(f"migration refused: {exc}")
        return 1
    print(f"migrated {count} records: {args.db} -> {args.dest}")
    return 0


def cmd_gc(args) -> int:
    if not args.store:
        print("gc requires --store")
        return 2
    store = ArtifactStore(args.store)
    report = store.gc(dry_run=args.dry_run, grace_s=args.grace)
    verb = "would remove" if args.dry_run else "removed"
    print(f"gc {store.root}: {verb} {len(report.removed)} artifacts "
          f"({report.bytes_freed} bytes); kept "
          f"{report.kept_pinned} pinned, "
          f"{report.kept_referenced} referenced, "
          f"{report.kept_recent} in grace window")
    for digest in report.removed:
        print(f"  - {digest}")
    return 0


def cmd_pin(args) -> int:
    if not args.store:
        print("pin requires --store")
        return 2
    store = ArtifactStore(args.store)
    try:
        if args.digest not in store:
            print(f"warning: {args.digest} not (yet) in store; "
                  "pin recorded anyway")
        store.pin(args.digest, ref=args.ref)
    except ValueError as exc:
        print(f"pin refused: {exc}")
        return 2
    print(f"pinned {args.digest} [{args.ref}] "
          f"(refs: {', '.join(store.pins(args.digest))})")
    return 0


def cmd_unpin(args) -> int:
    if not args.store:
        print("unpin requires --store")
        return 2
    store = ArtifactStore(args.store)
    try:
        existed = store.unpin(args.digest, ref=args.ref)
    except ValueError as exc:
        print(f"unpin refused: {exc}")
        return 2
    refs = store.pins(args.digest)
    state = "unpinned" if existed else "no such ref on"
    print(f"{state} {args.digest} [{args.ref}]"
          + (f" (remaining refs: {', '.join(refs)})" if refs else ""))
    return 0 if existed else 1


def cmd_serve(args) -> int:
    """Run the multi-tenant HTTP gateway until interrupted."""
    from .gateway import Gateway     # lazy: asyncio only when serving
    from .tenants import Tenant, TenantRegistry

    if not args.store:
        print("serve requires --store (the shared artifact cache)")
        return 2
    tenants = []
    for entry in args.tenant or []:
        name, sep, token = entry.partition("=")
        if not sep or not name or not token:
            print(f"invalid --tenant {entry!r}: expected NAME=TOKEN")
            return 2
        try:
            tenants.append(Tenant(
                name, token, rate=args.rate, burst=args.burst,
                max_in_flight=args.max_in_flight))
        except ValueError as exc:
            print(f"invalid tenant: {exc}")
            return 2
    if not tenants:
        print("warning: no --tenant given; serving a single "
              "'default' tenant with token 'dev-token' "
              "(development only)")
        tenants = [Tenant("default", "dev-token", rate=args.rate,
                          burst=args.burst,
                          max_in_flight=args.max_in_flight)]
    store = ArtifactStore(args.store)
    rundb = RunDatabase(args.db) if args.db else None
    gateway = Gateway(store, TenantRegistry(tenants), rundb=rundb,
                      workers=args.workers, host=args.host,
                      port=args.port)
    host, port = gateway.start()
    print(f"gateway listening on http://{host}:{port} "
          f"({len(tenants)} tenant(s), {gateway.workers} workers)",
          flush=True)
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        print("\ndraining...", flush=True)
    finally:
        gateway.shutdown()
    print("gateway stopped")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, campaign: bool = False):
        p.add_argument("--db", default=None,
                       help="run-database path (.jsonl = legacy "
                            "JSON-lines, else SQLite)")
        p.add_argument("--store", default=None,
                       help="artifact-store root directory")
        if campaign:
            p.add_argument("--workers", type=int, default=0,
                           help="worker processes (0 = in-process)")
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--timeout", type=float, default=None,
                           help="per-job timeout in seconds")
            p.add_argument("--watch", action="store_true",
                           help="stream job state transitions")

    p = sub.add_parser("sweep", help="locking-sweep campaign")
    p.add_argument("--bench", default="c17",
                   help=f"circuit: {sorted(BENCH_CIRCUITS)}")
    p.add_argument("--widths", default="0,2,4,8",
                   help="comma-separated key widths")
    p.add_argument("--max-iterations", type=int, default=400)
    common(p, campaign=True)
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("compose", help="composition cross-effect matrix")
    p.add_argument("--design", default="masked-and")
    p.add_argument("--stacks", default=None,
                   help=f"comma-separated from {sorted(DEFAULT_STACKS)}")
    p.add_argument("--traces", type=int, default=4000)
    p.add_argument("--noise", type=float, default=0.25)
    common(p, campaign=True)
    p.set_defaults(fn=cmd_compose)

    p = sub.add_parser("closure", help="security-closure campaign")
    p.add_argument("--benches", default="c17,rca8",
                   help=f"comma-separated from {sorted(BENCH_CIRCUITS)}")
    p.add_argument("--probing", type=float, default=0.05,
                   help="probing-exposure threshold")
    p.add_argument("--fia", type=float, default=0.30,
                   help="FIA-exposure threshold")
    p.add_argument("--trojan", type=float, default=0.05,
                   help="Trojan-insertability threshold")
    p.add_argument("--layers", type=int, default=None,
                   help="metal layers in the routing stack")
    p.add_argument("--max-iterations", type=int, default=4)
    common(p, campaign=True)
    p.set_defaults(fn=cmd_closure)

    p = sub.add_parser("serve", help="run the HTTP evaluation gateway")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8710,
                   help="listen port (0 = ephemeral)")
    p.add_argument("--workers", type=int, default=2,
                   help="warm worker processes")
    p.add_argument("--tenant", action="append", default=None,
                   metavar="NAME=TOKEN",
                   help="register a tenant (repeatable)")
    p.add_argument("--rate", type=float, default=50.0,
                   help="per-tenant request rate (req/s)")
    p.add_argument("--burst", type=int, default=100,
                   help="per-tenant rate-limit burst size")
    p.add_argument("--max-in-flight", type=int, default=64,
                   help="per-tenant live-job quota")
    common(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("jobs", help="query job records")
    p.add_argument("--run", default=None)
    p.add_argument("--type", default=None)
    p.add_argument("--status", default=None)
    p.add_argument("--cache", choices=("hit", "miss"), default=None)
    common(p)
    p.set_defaults(fn=cmd_jobs)

    p = sub.add_parser("runs", help="list runs with summaries")
    common(p)
    p.set_defaults(fn=cmd_runs)

    p = sub.add_parser("summary", help="aggregate statistics")
    p.add_argument("--run", default=None)
    common(p)
    p.set_defaults(fn=cmd_summary)

    p = sub.add_parser("store", help="artifact-store statistics")
    common(p)
    p.set_defaults(fn=cmd_store)

    p = sub.add_parser("migrate",
                       help="copy a JSONL run database into SQLite")
    p.add_argument("dest", help="destination SQLite database path")
    common(p)
    p.set_defaults(fn=cmd_migrate)

    p = sub.add_parser("gc", help="collect unreferenced artifacts")
    p.add_argument("--dry-run", action="store_true",
                   help="report without deleting")
    p.add_argument("--grace", type=float, default=300.0,
                   help="in-flight window in seconds (default 300)")
    common(p)
    p.set_defaults(fn=cmd_gc)

    p = sub.add_parser("pin", help="pin an artifact digest")
    p.add_argument("digest")
    p.add_argument("--ref", default="cli",
                   help="pin reference name (default 'cli')")
    common(p)
    p.set_defaults(fn=cmd_pin)

    p = sub.add_parser("unpin", help="drop a pin ref from a digest")
    p.add_argument("digest")
    p.add_argument("--ref", default="cli")
    common(p)
    p.set_defaults(fn=cmd_unpin)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
