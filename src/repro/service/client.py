"""Blocking HTTP client for the evaluation gateway.

:class:`GatewayClient` wraps the gateway's JSON API in plain method
calls over a persistent ``http.client`` connection — stdlib only,
thread-per-client (the load benchmark runs many of these
concurrently).  Error responses surface as
:class:`GatewayClientError` carrying the HTTP status and the server's
machine-readable error code, so callers can branch on ``429`` /
``rate_limited`` without parsing messages.

The SSE side (:meth:`GatewayClient.events`) opens its own dedicated
connection per stream — event streams are long-lived and would
otherwise wedge the request connection.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence


class GatewayClientError(Exception):
    """An error response from the gateway (or a transport failure)."""

    def __init__(self, status: int, code: str, message: str,
                 retry_after: Optional[float] = None) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message
        self.retry_after = retry_after


class GatewayClient:
    """One tenant's blocking handle on a running gateway."""

    def __init__(self, host: str, port: int, token: str,
                 timeout: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.token = token
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- transport -----------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout)
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "GatewayClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _request(self, method: str, path: str,
                 body: Optional[Dict[str, object]] = None,
                 query: Optional[Dict[str, str]] = None
                 ) -> Dict[str, object]:
        if query:
            path = path + "?" + urllib.parse.urlencode(
                {k: v for k, v in query.items() if v is not None})
        payload = None if body is None else json.dumps(body).encode()
        headers = {"X-Repro-Token": self.token}
        if payload is not None:
            headers["Content-Type"] = "application/json"
        for attempt in (0, 1):
            conn = self._connection()
            try:
                conn.request(method, path, body=payload,
                             headers=headers)
                response = conn.getresponse()
                raw = response.read()
                break
            except (http.client.HTTPException, ConnectionError,
                    OSError):
                # A keep-alive connection the server closed between
                # requests: reconnect once, then give up honestly.
                self.close()
                if attempt:
                    raise
        try:
            data = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            data = {}
        if response.status >= 400:
            error = data.get("error", {}) if isinstance(data, dict) \
                else {}
            retry_after = response.getheader("Retry-After")
            raise GatewayClientError(
                response.status,
                str(error.get("code", "error")),
                str(error.get("message", raw[:200])),
                retry_after=(float(retry_after)
                             if retry_after else None))
        return data

    # -- API surface ---------------------------------------------------

    def submit_job(self, job_type: str,
                   params: Optional[Dict[str, object]] = None,
                   **fields) -> Dict[str, object]:
        """``POST /v1/jobs``; returns the submission receipt."""
        body: Dict[str, object] = {"job_type": job_type,
                                   "params": params or {}}
        body.update(fields)
        return self._request("POST", "/v1/jobs", body=body)

    def submit_campaign(self, campaign: str,
                        **fields) -> Dict[str, object]:
        """``POST /v1/campaigns``; returns the submission receipt."""
        body: Dict[str, object] = {"campaign": campaign}
        body.update(fields)
        return self._request("POST", "/v1/campaigns", body=body)

    def job(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>``: current state (+result if done)."""
        return self._request(
            "GET", f"/v1/jobs/{urllib.parse.quote(job_id)}")

    def jobs(self, status: Optional[str] = None,
             limit: int = 200) -> List[Dict[str, object]]:
        """``GET /v1/jobs``: this tenant's jobs, newest first."""
        data = self._request("GET", "/v1/jobs",
                             query={"status": status,
                                    "limit": str(limit)})
        return list(data.get("jobs", []))

    def cancel(self, job_id: str) -> Dict[str, object]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._request(
            "POST", f"/v1/jobs/{urllib.parse.quote(job_id)}/cancel")

    def runs(self, run: Optional[str] = None,
             status: Optional[str] = None,
             job_type: Optional[str] = None) -> Dict[str, object]:
        """``GET /v1/runs``: the tenant's run-database slice."""
        return self._request("GET", "/v1/runs",
                             query={"run": run, "status": status,
                                    "type": job_type})

    def status(self) -> Dict[str, object]:
        """``GET /v1/status``: quota usage and server footprint."""
        return self._request("GET", "/v1/status")

    def publish_netlist(self, netlist_dict: Dict[str, object]
                        ) -> str:
        """``POST /v1/netlists``; returns the content digest."""
        data = self._request("POST", "/v1/netlists",
                             body=netlist_dict)
        return str(data["digest"])

    def artifact(self, digest: str) -> object:
        """``GET /v1/artifacts/<digest>``; returns the payload."""
        data = self._request(
            "GET", f"/v1/artifacts/{urllib.parse.quote(digest)}")
        return data["payload"]

    def pin(self, digest: str, ref: str = "default"
            ) -> Dict[str, object]:
        """``POST /v1/artifacts/<digest>/pin``."""
        return self._request(
            "POST",
            f"/v1/artifacts/{urllib.parse.quote(digest)}/pin",
            body={"ref": ref})

    def unpin(self, digest: str, ref: str = "default"
              ) -> Dict[str, object]:
        """``POST /v1/artifacts/<digest>/unpin``."""
        return self._request(
            "POST",
            f"/v1/artifacts/{urllib.parse.quote(digest)}/unpin",
            body={"ref": ref})

    # -- event streaming -----------------------------------------------

    def events(self, job_id: str) -> Iterator[Dict[str, object]]:
        """``GET /v1/jobs/<id>/events``: yield SSE events until done.

        Opens a dedicated connection (the stream holds it until the
        job's terminal transition).  Yields each ``data:`` payload as
        a dict; returns after the terminal event (or when the server
        ends the stream, whichever comes first).
        """
        terminal = ("succeeded", "failed", "timeout", "cancelled",
                    "skipped")
        conn = http.client.HTTPConnection(self.host, self.port,
                                          timeout=self.timeout)
        try:
            conn.request(
                "GET",
                f"/v1/jobs/{urllib.parse.quote(job_id)}/events",
                headers={"X-Repro-Token": self.token})
            response = conn.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    error = json.loads(raw).get("error", {})
                except (json.JSONDecodeError, AttributeError):
                    error = {}
                raise GatewayClientError(
                    response.status,
                    str(error.get("code", "error")),
                    str(error.get("message", raw[:200])))
            while True:
                line = response.readline()
                if not line:
                    return
                text = line.decode("utf-8", "replace").rstrip("\r\n")
                if text.startswith("data:"):
                    event = json.loads(text[5:].strip())
                    yield event
                    if event.get("status") in terminal:
                        return
        finally:
            conn.close()

    def wait(self, job_id: str,
             timeout: Optional[float] = None) -> Dict[str, object]:
        """Follow a job's event stream until terminal; return its state.

        Uses the SSE stream (push, not polling), then fetches the
        final job view so the caller gets the result payload.
        """
        terminal = ("succeeded", "failed", "timeout", "cancelled",
                    "skipped")
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        for event in self.events(job_id):
            if deadline is not None and time.monotonic() > deadline:
                raise GatewayClientError(
                    504, "timeout",
                    f"job {job_id} not terminal within {timeout}s")
            if event.get("status") in terminal:
                break
        # The event stream is push-fed straight from the bus and can
        # outrun the gateway's job-table update by a few milliseconds;
        # settle on the queryable view.
        settle = time.monotonic() + 5.0
        while True:
            state = self.job(job_id)
            if state.get("status") in terminal \
                    or time.monotonic() > settle:
                return state
            time.sleep(0.02)

    def wait_all(self, job_ids: Sequence[str],
                 timeout: Optional[float] = None
                 ) -> List[Dict[str, object]]:
        """:meth:`wait` over several jobs; returns states in order."""
        return [self.wait(job_id, timeout=timeout)
                for job_id in job_ids]
