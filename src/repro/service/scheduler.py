"""Multiprocess DAG scheduler with crash isolation and a result cache.

Jobs (:class:`~repro.service.jobs.JobSpec`) are submitted with
dependencies forming a DAG.  :meth:`Scheduler.run` drains it:

* **cache first** — before a job is ever dispatched, its
  ``spec_hash`` is looked up in the artifact store; a hit completes
  the job instantly (recorded as ``cache_hit`` in the run database);
* **one process per job** — each dispatch forks a worker that sends
  its result back over a pipe.  A worker dying mid-job (segfault,
  ``os._exit``, OOM kill) fails *only* that job: the parent notices
  the dead process, and retries with exponential backoff while the
  spec's budget lasts;
* **timeouts** — a job exceeding ``spec.timeout`` wall seconds is
  terminated and failed (terminal by default) without stalling
  siblings;
* **cancellation** — :meth:`cancel` withdraws a pending job (and
  terminates it if already running); its dependents are skipped;
* **degradation** — ``workers=0`` runs everything in-process, in
  deterministic submission-DAG order: no pickling, no forks, no
  timeout enforcement — the debugging mode.

The scheduler is deliberately *not* a thread pool around shared
memory: worker isolation is the point.  The paper's campaign shape —
many independent flow evaluations, each seconds long — wants process
granularity, and the artifact store (not IPC) is the durable data
plane.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .jobs import JobContext, JobSpec, run_job
from .rundb import RunDatabase, RunRecord
from .store import ArtifactStore

#: Job lifecycle states.  Terminal: succeeded / failed / timeout /
#: cancelled / skipped.
PENDING = "pending"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
SKIPPED = "skipped"

_TERMINAL = frozenset({SUCCEEDED, FAILED, TIMEOUT, CANCELLED, SKIPPED})


@dataclass
class Job:
    """Scheduler-side state of one submitted spec."""

    job_id: str
    spec: JobSpec
    deps: Tuple[str, ...] = ()
    status: str = PENDING
    attempts: int = 0
    result: Optional[object] = None
    error: str = ""
    cache_hit: bool = False
    wall_s: float = 0.0
    worker: str = ""
    not_before: float = 0.0     # backoff gate for the next attempt

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL


class _Running:
    """Bookkeeping for one live worker process."""

    def __init__(self, job: Job, process, conn, started: float) -> None:
        self.job = job
        self.process = process
        self.conn = conn
        self.started = started


def _worker_main(conn, spec_bytes: bytes, store_root: Optional[str],
                 seed: int, dep_results: Dict[str, object]) -> None:
    """Worker entry point: run one job, ship the outcome, exit.

    The spec travels pickled even under the fork start method so that
    an unpicklable spec fails loudly on every platform, not just where
    ``spawn`` is the default.
    """
    import pickle

    try:
        spec: JobSpec = pickle.loads(spec_bytes)
        store = ArtifactStore(store_root) if store_root else None
        ctx = JobContext(seed=seed, store=store,
                         dep_results=dep_results)
        result = run_job(spec, ctx)
        conn.send(("ok", result))
    except BaseException:   # noqa: BLE001 — the pipe is the report
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


class SchedulerError(Exception):
    """Raised for structural scheduling mistakes (cycles, bad deps)."""


class Scheduler:
    """Executes a job DAG over a worker pool with a durable cache.

    ``workers`` bounds concurrent worker processes (0 = in-process).
    ``store`` (optional) enables the content-addressed result cache;
    ``rundb`` (optional) records every outcome.  ``on_event`` is
    called as ``on_event(job)`` at each status transition — the CLI's
    watch mode.
    """

    def __init__(self, workers: int = 0,
                 store: Optional[ArtifactStore] = None,
                 rundb: Optional[RunDatabase] = None,
                 run_id: Optional[str] = None,
                 poll_interval: float = 0.005,
                 on_event: Optional[Callable[[Job], None]] = None) -> None:
        if workers < 0:
            raise SchedulerError(f"workers must be >= 0, got {workers}")
        self.workers = workers
        self.store = store
        self.rundb = rundb
        self.run_id = run_id or (
            f"run-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        self.poll_interval = poll_interval
        self.on_event = on_event
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []     # submission order
        self._running: List[_Running] = []   # live worker processes
        self._ids = itertools.count(1)
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec, deps: Sequence[str] = (),
               job_id: Optional[str] = None) -> str:
        """Register a job; returns its id.  ``deps`` are prior job ids."""
        job_id = job_id or f"j{next(self._ids):04d}-{spec.job_type}"
        if job_id in self.jobs:
            raise SchedulerError(f"duplicate job id {job_id!r}")
        for dep in deps:
            if dep not in self.jobs:
                raise SchedulerError(
                    f"job {job_id!r} depends on unknown job {dep!r} "
                    "(submit dependencies first)")
        job = Job(job_id, spec, tuple(deps))
        self.jobs[job_id] = job
        self._order.append(job_id)
        return job_id

    def cancel(self, job_id: str) -> None:
        """Withdraw a job; its dependents will be skipped.

        A job already running on a worker has its process terminated
        and its slot freed — the worker never reports, so the
        cancelled status is final (``_finish`` refuses double
        transitions regardless).  In-process (``workers=0``) execution
        cannot interrupt a job mid-run; there cancellation applies
        only to jobs that have not started.
        """
        job = self.jobs[job_id]
        if job.done:
            return
        for entry in list(self._running):
            if entry.job is job:
                entry.process.terminate()
                entry.process.join()
                entry.conn.close()
                self._running.remove(entry)
                break
        self._finish(job, CANCELLED)

    # -- state transitions ---------------------------------------------

    def _emit(self, job: Job) -> None:
        if self.on_event is not None:
            self.on_event(job)

    def _finish(self, job: Job, status: str, result=None,
                error: str = "", wall_s: float = 0.0,
                worker: str = "", cache_hit: bool = False) -> None:
        if job.done:
            # Terminal states are final: a worker reporting after its
            # job was cancelled must not resurrect it (or append a
            # second, contradictory run-database record).
            return
        job.status = status
        job.result = result
        job.error = error
        job.wall_s = wall_s
        job.worker = worker
        job.cache_hit = cache_hit
        self._emit(job)
        if (status == SUCCEEDED and not cache_hit
                and self.store is not None and job.spec.cacheable):
            self.store.put(job.spec.spec_hash,
                           {"result": result,
                            "job_type": job.spec.job_type,
                            "seed": job.spec.seed})
        if self.rundb is not None:
            self.rundb.record(RunRecord(
                run_id=self.run_id, job_id=job.job_id,
                job_type=job.spec.job_type,
                spec_hash=job.spec.spec_hash, status=status,
                attempts=job.attempts, wall_s=wall_s,
                cache_hit=cache_hit, worker=worker, error=error,
                seed=job.spec.seed))

    def _dep_state(self, job: Job) -> str:
        """"ready" | "waiting" | "blocked" from dependency statuses."""
        for dep in job.deps:
            status = self.jobs[dep].status
            if status in (FAILED, TIMEOUT, CANCELLED, SKIPPED):
                return "blocked"
            if status != SUCCEEDED:
                return "waiting"
        return "ready"

    def _serve_from_cache(self, job: Job) -> bool:
        if self.store is None or not job.spec.cacheable:
            return False
        payload = self.store.get(job.spec.spec_hash)
        if payload is None:
            return False
        self._finish(job, SUCCEEDED, result=payload.get("result"),
                     cache_hit=True, worker="cache")
        return True

    def _dep_results(self, job: Job) -> Dict[str, object]:
        return {dep: self.jobs[dep].result for dep in job.deps}

    # -- in-process (workers=0) ----------------------------------------

    def _run_inline(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for job_id in self._order:
                job = self.jobs[job_id]
                if job.done or self._dep_state(job) != "ready":
                    continue
                progressed = True
                if self._serve_from_cache(job):
                    continue
                # Per-job attempt loop: inline mode has no crash
                # isolation and cannot enforce timeouts, but the retry
                # policy still applies to exceptions.
                while True:
                    job.attempts += 1
                    job.status = RUNNING
                    self._emit(job)
                    started = time.perf_counter()
                    ctx = JobContext(
                        seed=job.spec.seed, store=self.store,
                        dep_results=self._dep_results(job))
                    try:
                        result = run_job(job.spec, ctx)
                    except Exception:   # noqa: BLE001
                        status = self._attempt_failed(
                            job, traceback.format_exc(),
                            time.perf_counter() - started, "inline",
                            retryable=True)
                        if status == PENDING:
                            time.sleep(max(
                                0.0, job.not_before
                                - time.perf_counter()))
                            continue
                    else:
                        self._finish(
                            job, SUCCEEDED, result=result,
                            wall_s=time.perf_counter() - started,
                            worker="inline")
                    break
        self._skip_blocked()

    # -- multiprocess --------------------------------------------------

    def _launch(self, job: Job) -> _Running:
        import pickle

        job.attempts += 1
        job.status = RUNNING
        self._emit(job)
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn, pickle.dumps(job.spec),
                  str(self.store.root) if self.store is not None
                  else None,
                  job.spec.seed, self._dep_results(job)),
            daemon=True)
        process.start()
        child_conn.close()
        return _Running(job, process, parent_conn, time.perf_counter())

    def _reap(self, running: _Running) -> Optional[str]:
        """Poll one live worker; returns the job's new status or None."""
        job = running.job
        if job.done:
            # Reached a terminal state (cancellation) while the entry
            # was still listed — e.g. cancel() fired from the RUNNING
            # on_event before the worker process existed.  Reclaim the
            # process and drop the entry; the status stands.
            running.process.terminate()
            running.process.join()
            running.conn.close()
            return job.status
        now = time.perf_counter()
        if running.conn.poll():
            try:
                kind, payload = running.conn.recv()
            except (EOFError, OSError):
                kind, payload = "crash", "result pipe broke mid-send"
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            if kind == "ok":
                self._finish(job, SUCCEEDED, result=payload,
                             wall_s=wall, worker=worker)
                return SUCCEEDED
            error = str(payload)
            return self._attempt_failed(job, error, wall, worker,
                                        retryable=True)
        if job.spec.timeout is not None \
                and now - running.started > job.spec.timeout:
            running.process.terminate()
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            error = (f"timeout: exceeded {job.spec.timeout:.3f}s "
                     f"budget after {wall:.3f}s")
            if job.spec.retry_on_timeout:
                return self._attempt_failed(job, error, wall, worker,
                                            retryable=True,
                                            terminal_status=TIMEOUT)
            self._finish(job, TIMEOUT, error=error, wall_s=wall,
                         worker=worker)
            return TIMEOUT
        if not running.process.is_alive():
            # Died without reporting: crash (os._exit, signal, OOM).
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            error = (f"worker crashed with exit code "
                     f"{running.process.exitcode} before reporting")
            return self._attempt_failed(job, error, wall, worker,
                                        retryable=True)
        return None

    def _attempt_failed(self, job: Job, error: str, wall: float,
                        worker: str, retryable: bool,
                        terminal_status: str = FAILED) -> str:
        if job.done:
            return job.status
        if retryable and job.attempts <= job.spec.retries:
            backoff = job.spec.retry_backoff * (
                2 ** (job.attempts - 1))
            job.status = PENDING
            job.not_before = time.perf_counter() + backoff
            job.error = error
            self._emit(job)
            return PENDING
        self._finish(job, terminal_status, error=error, wall_s=wall,
                     worker=worker)
        return terminal_status

    def _skip_blocked(self) -> None:
        """Mark jobs whose dependencies terminally failed as skipped."""
        progressed = True
        while progressed:
            progressed = False
            for job in self.jobs.values():
                if not job.done and self._dep_state(job) == "blocked":
                    failed_deps = [
                        d for d in job.deps
                        if self.jobs[d].status in
                        (FAILED, TIMEOUT, CANCELLED, SKIPPED)]
                    self._finish(
                        job, SKIPPED,
                        error="dependency failed: "
                              + ", ".join(failed_deps))
                    progressed = True

    def _run_pool(self) -> None:
        self._running = []
        while True:
            # Reap finished / timed-out / crashed workers.  Iterate a
            # snapshot: cancel() from an on_event callback may remove
            # entries mid-loop (a removed entry reaps as terminal and
            # is not kept).
            still: List[_Running] = []
            for entry in list(self._running):
                outcome = self._reap(entry)
                if outcome is None:
                    still.append(entry)
            self._running = still
            self._skip_blocked()
            # Launch ready jobs into free slots (submission order; a
            # job in backoff yields its slot to later ready jobs).
            now = time.perf_counter()
            for job_id in self._order:
                if len(self._running) >= self.workers:
                    break
                job = self.jobs[job_id]
                if (job.done or job.status == RUNNING
                        or self._dep_state(job) != "ready"
                        or job.not_before > now):
                    continue
                if self._serve_from_cache(job):
                    continue
                self._running.append(self._launch(job))
            if not self._running:
                pending = [j for j in self.jobs.values() if not j.done]
                if not pending:
                    break
                # Nothing is running but work remains: with an acyclic
                # DAG that means every runnable job sits behind a
                # backoff gate.  Sleep until the earliest one opens.
                gates = [j.not_before for j in pending
                         if j.not_before > now]
                if gates:
                    time.sleep(max(0.0,
                                   min(gates) - time.perf_counter()))
                continue
            time.sleep(self.poll_interval)

    # -- entry point ---------------------------------------------------

    def run(self) -> Dict[str, Job]:
        """Drain the DAG; returns the final job table."""
        self._check_acyclic()
        if self.workers == 0:
            self._run_inline()
        else:
            self._run_pool()
        return dict(self.jobs)

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}   # 0 visiting, 1 done

        def visit(job_id: str, chain: Tuple[str, ...]) -> None:
            mark = state.get(job_id)
            if mark == 1:
                return
            if mark == 0:
                raise SchedulerError(
                    "dependency cycle: " + " -> ".join(
                        chain + (job_id,)))
            state[job_id] = 0
            for dep in self.jobs[job_id].deps:
                visit(dep, chain + (job_id,))
            state[job_id] = 1

        for job_id in self._order:
            visit(job_id, ())

    # -- results -------------------------------------------------------

    def results(self) -> Dict[str, object]:
        """job id -> result for every succeeded job."""
        return {j.job_id: j.result for j in self.jobs.values()
                if j.status == SUCCEEDED}

    def counts(self) -> Dict[str, int]:
        """Status -> job count."""
        out: Dict[str, int] = {}
        for job in self.jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out
