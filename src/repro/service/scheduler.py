"""Multiprocess DAG scheduler with crash isolation and a result cache.

Jobs (:class:`~repro.service.jobs.JobSpec`) are submitted with
dependencies forming a DAG.  :meth:`Scheduler.run` drains it:

* **cache first** — before a job is ever dispatched, its
  ``spec_hash`` is looked up in the artifact store; a hit completes
  the job instantly (recorded as ``cache_hit`` in the run database);
* **persistent worker pool** — the default execution mode keeps
  ``workers`` long-lived processes (:class:`WorkerPool`) that pull
  jobs over duplex pipes.  Workers stay warm between jobs: the
  process-local :func:`repro.netlist.engine_cache` (compiled gate
  programs, parsed netlists) and :func:`repro.formal.solver_registry`
  (incremental SAT state) persist for the worker's lifetime, so a
  campaign re-evaluating the same design stops paying cold-start
  costs.  Each worker runs a heartbeat thread; the parent detects
  crashes (pipe EOF, process sentinel) *and* wedged-but-alive workers
  (stale heartbeat), kills the process, respawns a fresh one, and
  retries the job with exponential backoff while the spec's budget
  lasts.  A pool can be shared across schedulers (``pool=``) so
  warmth survives campaign resubmission;
* **one process per job** — ``persistent=False`` restores the PR 4
  fork-per-job dispatch (the comparison baseline for the warm-pool
  benchmark);
* **timeouts** — a job exceeding ``spec.timeout`` wall seconds has
  its worker killed and replaced without stalling siblings;
* **cancellation** — :meth:`cancel` withdraws a pending job (and
  kills its worker if already running); its dependents are skipped;
* **degradation** — ``workers=0`` runs everything in-process, in
  deterministic submission-DAG order: no pickling, no forks, no
  timeout enforcement — the debugging mode.

Serial, inline, and pooled execution are bit-identical on the
result-bearing fields: warm caches are keyed by content (transport
digests, generated source) and the solver registry's determinism
contract (:class:`repro.formal.SolverRegistry`) keeps model-dependent
state out of surfaced results.

The scheduler is deliberately *not* a thread pool around shared
memory: worker isolation is the point.  The paper's campaign shape —
many independent flow evaluations, each seconds long — wants process
granularity, and the artifact store (not IPC) is the durable data
plane.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import time
import traceback
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .events import EventBus, JobEvent
from .jobs import JobContext, JobSpec, run_job
from .rundb import RunDatabase, RunRecord
from .store import ArtifactStore

#: Job lifecycle states.  Terminal: succeeded / failed / timeout /
#: cancelled / skipped.
PENDING = "pending"
RUNNING = "running"
SUCCEEDED = "succeeded"
FAILED = "failed"
TIMEOUT = "timeout"
CANCELLED = "cancelled"
SKIPPED = "skipped"

_TERMINAL = frozenset({SUCCEEDED, FAILED, TIMEOUT, CANCELLED, SKIPPED})


@dataclass
class Job:
    """Scheduler-side state of one submitted spec."""

    job_id: str
    spec: JobSpec
    deps: Tuple[str, ...] = ()
    status: str = PENDING
    attempts: int = 0
    result: Optional[object] = None
    error: str = ""
    cache_hit: bool = False
    wall_s: float = 0.0
    worker: str = ""
    not_before: float = 0.0     # backoff gate for the next attempt
    run_id: str = ""            # per-job override of the scheduler's

    @property
    def done(self) -> bool:
        return self.status in _TERMINAL


class _Running:
    """Bookkeeping for one live per-job worker process."""

    def __init__(self, job: Job, process, conn, started: float) -> None:
        self.job = job
        self.process = process
        self.conn = conn
        self.started = started


def _worker_main(conn, spec_bytes: bytes, store_root: Optional[str],
                 seed: int, dep_results: Dict[str, object]) -> None:
    """Per-job worker entry point: run one job, ship the outcome, exit.

    The spec travels pickled even under the fork start method so that
    an unpicklable spec fails loudly on every platform, not just where
    ``spawn`` is the default.
    """
    import pickle

    try:
        spec: JobSpec = pickle.loads(spec_bytes)
        store = ArtifactStore(store_root) if store_root else None
        ctx = JobContext(seed=seed, store=store,
                         dep_results=dep_results)
        result = run_job(spec, ctx)
        conn.send(("ok", result))
    except BaseException:   # noqa: BLE001 — the pipe is the report
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):
            pass
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _pool_worker_main(conn, heartbeat_interval: float) -> None:
    """Persistent worker entry point: serve jobs until told to stop.

    Protocol (duplex pipe, parent <-> worker):

    * parent sends ``(task_id, spec_bytes, store_root, seed,
      dep_results)`` tuples, or ``None`` to shut down;
    * worker replies ``("done", task_id, "ok"|"error", payload)`` per
      task, interleaved with ``("hb", monotonic_time)`` heartbeats
      from a daemon thread (send-locked — the pipe is shared).

    Warm state lives in the process, not this function: the engine
    cache and solver registry are module-level singletons that survive
    between tasks, and :class:`~repro.service.store.ArtifactStore`
    handles are kept per root so store counters accumulate.  A task id
    travels with every result so the parent can discard output from a
    task it has already written off (timeout, cancellation) — though
    in practice kills replace the whole process and pipe.
    """
    import pickle
    import signal
    import threading

    # Terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group, workers included; the parent owns worker shutdown (pipe
    # close / terminate), so let it drain instead of dying mid-recv
    # with a KeyboardInterrupt traceback.
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    send_lock = threading.Lock()
    stop = threading.Event()

    def beat() -> None:
        while not stop.wait(heartbeat_interval):
            with send_lock:
                try:
                    conn.send(("hb", time.monotonic()))
                except (BrokenPipeError, OSError):
                    return

    threading.Thread(target=beat, daemon=True).start()
    stores: Dict[str, ArtifactStore] = {}
    try:
        while True:
            try:
                task = conn.recv()
            except (EOFError, OSError):
                break
            if task is None:
                break
            task_id, spec_bytes, store_root, seed, dep_results = task
            try:
                spec: JobSpec = pickle.loads(spec_bytes)
                store = (stores.setdefault(store_root,
                                           ArtifactStore(store_root))
                         if store_root else None)
                ctx = JobContext(seed=seed, store=store,
                                 dep_results=dep_results)
                result = run_job(spec, ctx)
                reply = ("done", task_id, "ok", result)
            except BaseException:   # noqa: BLE001 — pipe is the report
                reply = ("done", task_id, "error",
                         traceback.format_exc())
            try:
                with send_lock:
                    conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            except Exception:   # unpicklable result; pipe still clean
                with send_lock:
                    try:
                        conn.send(("done", task_id, "error",
                                   "result not picklable:\n"
                                   + traceback.format_exc()))
                    except (BrokenPipeError, OSError):
                        break
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


class SchedulerError(Exception):
    """Raised for structural scheduling mistakes (cycles, bad deps)."""


class _PoolWorker:
    """Parent-side handle on one persistent worker process."""

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.last_beat = time.perf_counter()

    @property
    def label(self) -> str:
        return f"pid{self.process.pid}"


class WorkerPool:
    """A fixed-size set of persistent worker processes.

    Standalone so it can outlive any one :class:`Scheduler`: pass the
    same pool to successive schedulers (``Scheduler(pool=...)``) and
    the workers' process-local caches — compiled netlist programs,
    parsed netlists, incremental SAT engines — stay warm across
    campaign resubmissions.  Context-manager friendly::

        with WorkerPool(4) as pool:
            Scheduler(pool=pool, store=store).run_campaign_a()
            Scheduler(pool=pool, store=store).run_campaign_b()

    ``heartbeat_interval`` is how often each worker beats;
    ``heartbeat_timeout`` is how long the scheduler lets a *busy*
    worker go silent before declaring it wedged and replacing it
    (generous by default: a pure-Python job never starves the beat
    thread for seconds, but a C-extension busy loop could).
    Crash-killed and wedged workers are replaced in place via
    :meth:`respawn`, keeping the pool at size; ``respawns`` counts
    replacements for tests and telemetry.
    """

    def __init__(self, workers: int,
                 heartbeat_interval: float = 0.2,
                 heartbeat_timeout: Optional[float] = None,
                 mp_context=None) -> None:
        if workers < 1:
            raise SchedulerError(
                f"pool needs at least one worker, got {workers}")
        self.size = workers
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = (
            heartbeat_timeout if heartbeat_timeout is not None
            else max(25 * heartbeat_interval, 5.0))
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
        self._mp = mp_context
        self._workers: List[_PoolWorker] = []
        self.started = False
        self.respawns = 0

    # -- lifecycle -----------------------------------------------------

    def _spawn(self) -> _PoolWorker:
        parent_conn, child_conn = self._mp.Pipe(duplex=True)
        process = self._mp.Process(
            target=_pool_worker_main,
            args=(child_conn, self.heartbeat_interval),
            daemon=True)
        process.start()
        child_conn.close()
        return _PoolWorker(process, parent_conn)

    def start(self) -> "WorkerPool":
        if not self.started:
            self._workers = [self._spawn() for _ in range(self.size)]
            self.started = True
        return self

    def workers(self) -> List[_PoolWorker]:
        """Current worker handles (replaced objects after respawns)."""
        self.start()
        return list(self._workers)

    def respawn(self, worker: _PoolWorker) -> _PoolWorker:
        """Kill ``worker`` and replace it in place with a fresh one.

        Uses SIGKILL, not SIGTERM: a stopped (``SIGSTOP``) process
        queues SIGTERM until continued, which would hang the join.
        """
        try:
            worker.process.kill()
        except (OSError, ValueError):
            pass
        worker.process.join()
        try:
            worker.conn.close()
        except OSError:
            pass
        replacement = self._spawn()
        self._workers[self._workers.index(worker)] = replacement
        self.respawns += 1
        return replacement

    def shutdown(self) -> None:
        """Stop all workers: polite ``None``, then the hammer."""
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.kill()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []
        self.started = False

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __len__(self) -> int:
        return self.size


class _PoolTask:
    """One job in flight on a pool worker."""

    def __init__(self, job: Job, task_id: str, started: float) -> None:
        self.job = job
        self.task_id = task_id
        self.started = started


#: Task ids are process-global so two schedulers sharing one pool can
#: never mis-attribute a stale in-flight result to each other.
_TASK_IDS = itertools.count(1)


class Scheduler:
    """Executes a job DAG over a worker pool with a durable cache.

    ``workers`` bounds concurrent worker processes (0 = in-process).
    ``store`` (optional) enables the content-addressed result cache;
    ``rundb`` (optional) records every outcome.  ``on_event`` is
    called as ``on_event(job)`` at each status transition — the CLI's
    watch mode.

    ``persistent`` (default) executes on a :class:`WorkerPool` of
    long-lived workers; pass an existing ``pool`` to share warm
    workers across schedulers (the pool then outlives this run).
    ``persistent=False`` restores the fork-per-job dispatch of PR 4.
    """

    def __init__(self, workers: int = 0,
                 store: Optional[ArtifactStore] = None,
                 rundb: Optional[RunDatabase] = None,
                 run_id: Optional[str] = None,
                 poll_interval: float = 0.005,
                 on_event: Optional[Callable[[Job], None]] = None,
                 persistent: bool = True,
                 pool: Optional[WorkerPool] = None,
                 bus: Optional[EventBus] = None) -> None:
        if workers < 0:
            raise SchedulerError(f"workers must be >= 0, got {workers}")
        self.workers = pool.size if pool is not None else workers
        self.store = store
        self.rundb = rundb
        self.run_id = run_id or (
            f"run-{os.getpid()}-{uuid.uuid4().hex[:8]}")
        self.poll_interval = poll_interval
        self.on_event = on_event
        self.bus = bus
        self.persistent = persistent or pool is not None
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []     # submission order
        self._running: List[_Running] = []   # live per-job processes
        self._shared_pool = pool
        self._pool: Optional[WorkerPool] = pool
        self._busy: Dict[_PoolWorker, _PoolTask] = {}
        self._ids = itertools.count(1)
        methods = multiprocessing.get_all_start_methods()
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn")

    # -- submission ----------------------------------------------------

    def submit(self, spec: JobSpec, deps: Sequence[str] = (),
               job_id: Optional[str] = None,
               run_id: Optional[str] = None) -> str:
        """Register a job; returns its id.  ``deps`` are prior job ids.

        ``run_id`` overrides the scheduler-wide run id for this job's
        run-database record and event stream — the gateway uses it to
        namespace each tenant submission inside one long-lived
        scheduler.
        """
        job_id = job_id or f"j{next(self._ids):04d}-{spec.job_type}"
        if job_id in self.jobs:
            raise SchedulerError(f"duplicate job id {job_id!r}")
        for dep in deps:
            if dep not in self.jobs:
                raise SchedulerError(
                    f"job {job_id!r} depends on unknown job {dep!r} "
                    "(submit dependencies first)")
        job = Job(job_id, spec, tuple(deps), run_id=run_id or "")
        self.jobs[job_id] = job
        self._order.append(job_id)
        return job_id

    def forget(self, job_id: str) -> None:
        """Drop a *terminal* job from the table.

        Long-lived schedulers (the gateway's) would otherwise grow
        their job table without bound.  Refuses to drop a live job or
        one a non-terminal job still depends on — dependency state is
        resolved through the table.
        """
        job = self.jobs.get(job_id)
        if job is None:
            return
        if not job.done:
            raise SchedulerError(
                f"cannot forget live job {job_id!r} "
                f"(status {job.status})")
        for other in self.jobs.values():
            if not other.done and job_id in other.deps:
                raise SchedulerError(
                    f"cannot forget {job_id!r}: live job "
                    f"{other.job_id!r} depends on it")
        del self.jobs[job_id]
        self._order.remove(job_id)

    def cancel(self, job_id: str) -> None:
        """Withdraw a job; its dependents will be skipped.

        A job already running on a worker has its process terminated
        (pool mode: killed and the worker respawned) and its slot
        freed — the worker never reports, so the cancelled status is
        final (``_finish`` refuses double transitions regardless).
        In-process (``workers=0``) execution cannot interrupt a job
        mid-run; there cancellation applies only to jobs that have
        not started.
        """
        job = self.jobs[job_id]
        if job.done:
            return
        for entry in list(self._running):
            if entry.job is job:
                entry.process.terminate()
                entry.process.join()
                entry.conn.close()
                self._running.remove(entry)
                break
        for worker, task in list(self._busy.items()):
            if task.job is job:
                del self._busy[worker]
                if self._pool is not None:
                    self._pool.respawn(worker)
                break
        self._finish(job, CANCELLED)

    # -- state transitions ---------------------------------------------

    def _emit(self, job: Job) -> None:
        if self.on_event is not None:
            self.on_event(job)
        if self.bus is not None:
            self.bus.publish(JobEvent.from_job(
                job, run_id=job.run_id or self.run_id,
                with_result=(job.status == SUCCEEDED)))

    def _finish(self, job: Job, status: str, result=None,
                error: str = "", wall_s: float = 0.0,
                worker: str = "", cache_hit: bool = False) -> None:
        if job.done:
            # Terminal states are final: a worker reporting after its
            # job was cancelled must not resurrect it (or append a
            # second, contradictory run-database record).
            return
        job.status = status
        job.result = result
        job.error = error
        job.wall_s = wall_s
        job.worker = worker
        job.cache_hit = cache_hit
        self._emit(job)
        if (status == SUCCEEDED and not cache_hit
                and self.store is not None and job.spec.cacheable):
            self.store.put(job.spec.spec_hash,
                           {"result": result,
                            "job_type": job.spec.job_type,
                            "seed": job.spec.seed})
        if self.rundb is not None:
            self.rundb.record(RunRecord(
                run_id=job.run_id or self.run_id, job_id=job.job_id,
                job_type=job.spec.job_type,
                spec_hash=job.spec.spec_hash, status=status,
                attempts=job.attempts, wall_s=wall_s,
                cache_hit=cache_hit, worker=worker, error=error,
                seed=job.spec.seed))

    def _dep_state(self, job: Job) -> str:
        """"ready" | "waiting" | "blocked" from dependency statuses."""
        for dep in job.deps:
            status = self.jobs[dep].status
            if status in (FAILED, TIMEOUT, CANCELLED, SKIPPED):
                return "blocked"
            if status != SUCCEEDED:
                return "waiting"
        return "ready"

    def _serve_from_cache(self, job: Job) -> bool:
        if self.store is None or not job.spec.cacheable:
            return False
        payload = self.store.get(job.spec.spec_hash)
        if payload is None:
            return False
        self._finish(job, SUCCEEDED, result=payload.get("result"),
                     cache_hit=True, worker="cache")
        return True

    def _dep_results(self, job: Job) -> Dict[str, object]:
        return {dep: self.jobs[dep].result for dep in job.deps}

    # -- in-process (workers=0) ----------------------------------------

    def _run_inline(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for job_id in self._order:
                job = self.jobs[job_id]
                if job.done or self._dep_state(job) != "ready":
                    continue
                progressed = True
                if self._serve_from_cache(job):
                    continue
                # Per-job attempt loop: inline mode has no crash
                # isolation and cannot enforce timeouts, but the retry
                # policy still applies to exceptions.
                while True:
                    job.attempts += 1
                    job.status = RUNNING
                    self._emit(job)
                    started = time.perf_counter()
                    ctx = JobContext(
                        seed=job.spec.seed, store=self.store,
                        dep_results=self._dep_results(job))
                    try:
                        result = run_job(job.spec, ctx)
                    except Exception:   # noqa: BLE001
                        status = self._attempt_failed(
                            job, traceback.format_exc(),
                            time.perf_counter() - started, "inline",
                            retryable=True)
                        if status == PENDING:
                            time.sleep(max(
                                0.0, job.not_before
                                - time.perf_counter()))
                            continue
                    else:
                        self._finish(
                            job, SUCCEEDED, result=result,
                            wall_s=time.perf_counter() - started,
                            worker="inline")
                    break
        self._skip_blocked()

    # -- multiprocess --------------------------------------------------

    def _launch(self, job: Job) -> _Running:
        import pickle

        job.attempts += 1
        job.status = RUNNING
        self._emit(job)
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_worker_main,
            args=(child_conn, pickle.dumps(job.spec),
                  str(self.store.root) if self.store is not None
                  else None,
                  job.spec.seed, self._dep_results(job)),
            daemon=True)
        process.start()
        child_conn.close()
        return _Running(job, process, parent_conn, time.perf_counter())

    def _reap(self, running: _Running) -> Optional[str]:
        """Poll one live worker; returns the job's new status or None."""
        job = running.job
        if job.done:
            # Reached a terminal state (cancellation) while the entry
            # was still listed — e.g. cancel() fired from the RUNNING
            # on_event before the worker process existed.  Reclaim the
            # process and drop the entry; the status stands.
            running.process.terminate()
            running.process.join()
            running.conn.close()
            return job.status
        now = time.perf_counter()
        if running.conn.poll():
            try:
                kind, payload = running.conn.recv()
            except (EOFError, OSError):
                kind, payload = "crash", "result pipe broke mid-send"
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            if kind == "ok":
                self._finish(job, SUCCEEDED, result=payload,
                             wall_s=wall, worker=worker)
                return SUCCEEDED
            error = str(payload)
            return self._attempt_failed(job, error, wall, worker,
                                        retryable=True)
        if job.spec.timeout is not None \
                and now - running.started > job.spec.timeout:
            running.process.terminate()
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            error = (f"timeout: exceeded {job.spec.timeout:.3f}s "
                     f"budget after {wall:.3f}s")
            if job.spec.retry_on_timeout:
                return self._attempt_failed(job, error, wall, worker,
                                            retryable=True,
                                            terminal_status=TIMEOUT)
            self._finish(job, TIMEOUT, error=error, wall_s=wall,
                         worker=worker)
            return TIMEOUT
        if not running.process.is_alive():
            # Died without reporting: crash (os._exit, signal, OOM).
            running.process.join()
            running.conn.close()
            wall = now - running.started
            worker = f"pid{running.process.pid}"
            error = (f"worker crashed with exit code "
                     f"{running.process.exitcode} before reporting")
            return self._attempt_failed(job, error, wall, worker,
                                        retryable=True)
        return None

    def _attempt_failed(self, job: Job, error: str, wall: float,
                        worker: str, retryable: bool,
                        terminal_status: str = FAILED) -> str:
        if job.done:
            return job.status
        if retryable and job.attempts <= job.spec.retries:
            backoff = job.spec.retry_backoff * (
                2 ** (job.attempts - 1))
            job.status = PENDING
            job.not_before = time.perf_counter() + backoff
            job.error = error
            self._emit(job)
            return PENDING
        self._finish(job, terminal_status, error=error, wall_s=wall,
                     worker=worker)
        return terminal_status

    def _skip_blocked(self) -> None:
        """Mark jobs whose dependencies terminally failed as skipped."""
        progressed = True
        while progressed:
            progressed = False
            for job in self.jobs.values():
                if not job.done and self._dep_state(job) == "blocked":
                    failed_deps = [
                        d for d in job.deps
                        if self.jobs[d].status in
                        (FAILED, TIMEOUT, CANCELLED, SKIPPED)]
                    self._finish(
                        job, SKIPPED,
                        error="dependency failed: "
                              + ", ".join(failed_deps))
                    progressed = True

    def _run_per_job(self) -> None:
        self._running = []
        while True:
            # Reap finished / timed-out / crashed workers.  Iterate a
            # snapshot: cancel() from an on_event callback may remove
            # entries mid-loop (a removed entry reaps as terminal and
            # is not kept).
            still: List[_Running] = []
            for entry in list(self._running):
                outcome = self._reap(entry)
                if outcome is None:
                    still.append(entry)
            self._running = still
            self._skip_blocked()
            # Launch ready jobs into free slots (submission order; a
            # job in backoff yields its slot to later ready jobs).
            now = time.perf_counter()
            for job_id in self._order:
                if len(self._running) >= self.workers:
                    break
                job = self.jobs[job_id]
                if (job.done or job.status == RUNNING
                        or self._dep_state(job) != "ready"
                        or job.not_before > now):
                    continue
                if self._serve_from_cache(job):
                    continue
                self._running.append(self._launch(job))
            if not self._running:
                pending = [j for j in self.jobs.values() if not j.done]
                if not pending:
                    break
                # Nothing is running but work remains: with an acyclic
                # DAG that means every runnable job sits behind a
                # backoff gate.  Sleep until the earliest one opens.
                gates = [j.not_before for j in pending
                         if j.not_before > now]
                if gates:
                    time.sleep(max(0.0,
                                   min(gates) - time.perf_counter()))
                continue
            time.sleep(self.poll_interval)

    # -- persistent pool -----------------------------------------------

    def _dispatch(self, job: Job, worker: _PoolWorker) -> None:
        """Hand ``job`` to an idle pool worker."""
        import pickle

        job.attempts += 1
        job.status = RUNNING
        self._emit(job)
        if job.done:
            # cancel() fired from the RUNNING event before the task
            # was sent; the worker was never involved, leave it idle.
            return
        task_id = f"t{next(_TASK_IDS)}"
        spec_bytes = pickle.dumps(job.spec)
        worker.last_beat = time.perf_counter()
        try:
            worker.conn.send((task_id, spec_bytes,
                              str(self.store.root)
                              if self.store is not None else None,
                              job.spec.seed, self._dep_results(job)))
        except (BrokenPipeError, OSError):
            # Worker died between loop iterations; replace it and put
            # the attempt through the normal retry policy.
            self._pool.respawn(worker)
            self._attempt_failed(
                job, "worker died before accepting the job", 0.0,
                worker.label, retryable=True)
            return
        except Exception:
            # Unpicklable dependency results: the job cannot travel.
            self._attempt_failed(
                job, "job could not be shipped to a worker:\n"
                + traceback.format_exc(), 0.0, worker.label,
                retryable=True)
            return
        self._busy[worker] = _PoolTask(job, task_id,
                                       time.perf_counter())

    def _pool_message(self, worker: _PoolWorker, message) -> None:
        """Process one parent-bound pipe message from ``worker``."""
        if message[0] == "hb":
            worker.last_beat = time.perf_counter()
            return
        _, task_id, status, payload = message
        task = self._busy.get(worker)
        if task is None or task.task_id != task_id:
            return  # stale result for a task already written off
        del self._busy[worker]
        job = task.job
        wall = time.perf_counter() - task.started
        if status == "ok":
            self._finish(job, SUCCEEDED, result=payload, wall_s=wall,
                         worker=worker.label)
        else:
            self._attempt_failed(job, str(payload), wall, worker.label,
                                 retryable=True)

    def _pool_worker_died(self, worker: _PoolWorker) -> None:
        """A pool worker's process ended or its pipe broke."""
        task = self._busy.pop(worker, None)
        exitcode = worker.process.exitcode
        self._pool.respawn(worker)
        if task is not None and not task.job.done:
            wall = time.perf_counter() - task.started
            self._attempt_failed(
                task.job,
                f"worker crashed with exit code {exitcode} "
                "before reporting", wall, worker.label,
                retryable=True)

    def _pool_deadlines(self) -> Optional[float]:
        """Kill over-budget / wedged workers; next deadline or None."""
        now = time.perf_counter()
        next_deadline: Optional[float] = None
        for worker, task in list(self._busy.items()):
            job = task.job
            timeout = job.spec.timeout
            if timeout is not None and now - task.started > timeout:
                del self._busy[worker]
                self._pool.respawn(worker)
                wall = now - task.started
                error = (f"timeout: exceeded {timeout:.3f}s budget "
                         f"after {wall:.3f}s")
                if job.spec.retry_on_timeout:
                    self._attempt_failed(job, error, wall,
                                         worker.label, retryable=True,
                                         terminal_status=TIMEOUT)
                else:
                    self._finish(job, TIMEOUT, error=error,
                                 wall_s=wall, worker=worker.label)
                continue
            hb_deadline = (worker.last_beat
                           + self._pool.heartbeat_timeout)
            if worker.process.is_alive() and now > hb_deadline:
                del self._busy[worker]
                self._pool.respawn(worker)
                wall = now - task.started
                self._attempt_failed(
                    job,
                    "worker wedged: no heartbeat for "
                    f"{now - worker.last_beat:.3f}s", wall,
                    worker.label, retryable=True)
                continue
            if timeout is not None:
                deadline = task.started + timeout
                if next_deadline is None or deadline < next_deadline:
                    next_deadline = deadline
            if next_deadline is None or hb_deadline < next_deadline:
                next_deadline = hb_deadline
        return next_deadline

    def service_open(self) -> None:
        """Prepare for stepped pool execution (gateway mode).

        Starts the pool (creating an owned one if none was shared) and
        resets in-flight bookkeeping.  Pair with :meth:`service_close`.
        """
        self._check_acyclic()
        if self._pool is None:
            self._pool = WorkerPool(self.workers, mp_context=self._mp)
        self._pool.start()
        self._busy = {}

    def service_step(self, max_wait: float = 0.5,
                     extra: Sequence = ()) -> bool:
        """One scheduling quantum; returns True when no job is live.

        Dispatches ready jobs onto idle workers, then sleeps (at most
        ``max_wait`` seconds) until a worker message, a worker death, a
        deadline, a backoff gate — or readiness of any of the caller's
        ``extra`` wait handles (e.g. the gateway's wake pipe, so a new
        submission interrupts the wait instead of riding it out).
        Extra handles are never read here; the caller drains them.

        This is the body of the classic :meth:`run` pool loop, exposed
        so a long-running server can interleave scheduling with its
        own command processing on a single thread.
        """
        from multiprocessing.connection import wait as _conn_wait

        pool = self._pool
        self._skip_blocked()
        # Launch ready jobs onto idle workers (submission order; a
        # job in backoff yields its slot to later ready jobs).
        now = time.perf_counter()
        idle = [w for w in pool.workers() if w not in self._busy]
        for job_id in self._order:
            if not idle:
                break
            job = self.jobs[job_id]
            if (job.done or job.status == RUNNING
                    or self._dep_state(job) != "ready"
                    or job.not_before > now):
                continue
            if self._serve_from_cache(job):
                continue
            self._dispatch(job, idle.pop(0))
        self._skip_blocked()
        if all(job.done for job in self.jobs.values()):
            return True
        # Sleep until something can happen: a worker message, a
        # worker death (sentinel), a job/heartbeat deadline, or a
        # backoff gate opening.  Event-driven — no fixed-rate
        # polling while jobs run.
        deadline = self._pool_deadlines()
        now = time.perf_counter()
        gates = [job.not_before for job in self.jobs.values()
                 if not job.done and job.status != RUNNING
                 and job.not_before > now]
        if gates:
            gate = min(gates)
            if deadline is None or gate < deadline:
                deadline = gate
        wait_s = max_wait if deadline is None \
            else max(0.0, min(deadline - now, max_wait))
        handles = {}
        for worker in pool.workers():
            handles[worker.conn] = worker
            handles[worker.process.sentinel] = worker
        ready = _conn_wait(list(handles) + list(extra),
                           timeout=wait_s)
        dead = []
        for handle in ready:
            worker = handles.get(handle)
            if worker is None:
                continue    # caller's extra handle; not ours to read
            if handle is worker.conn:
                try:
                    while worker.conn.poll():
                        self._pool_message(worker,
                                           worker.conn.recv())
                except (EOFError, OSError):
                    dead.append(worker)
            elif not worker.process.is_alive():
                dead.append(worker)
        for worker in dict.fromkeys(dead):
            # Drain any result sent before death, then handle it.
            try:
                while worker.conn.poll():
                    self._pool_message(worker, worker.conn.recv())
            except (EOFError, OSError):
                pass
            if worker in pool.workers():
                self._pool_worker_died(worker)
        self._pool_deadlines()
        return all(job.done for job in self.jobs.values())

    def service_close(self) -> None:
        """Tear down stepped execution (shuts down an owned pool)."""
        if self._shared_pool is None and self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        self._busy = {}

    def _run_pooled(self) -> None:
        self._pool.start()
        self._busy = {}
        while not self.service_step():
            pass

    # -- entry point ---------------------------------------------------

    def run(self) -> Dict[str, Job]:
        """Drain the DAG; returns the final job table."""
        self._check_acyclic()
        if self.workers == 0:
            self._run_inline()
        elif not self.persistent:
            self._run_per_job()
        else:
            owned = self._shared_pool is None
            if owned:
                self._pool = WorkerPool(self.workers,
                                        mp_context=self._mp)
            try:
                self._run_pooled()
            finally:
                if owned:
                    self._pool.shutdown()
                    self._pool = None
        return dict(self.jobs)

    def _check_acyclic(self) -> None:
        state: Dict[str, int] = {}   # 0 visiting, 1 done

        def visit(job_id: str, chain: Tuple[str, ...]) -> None:
            mark = state.get(job_id)
            if mark == 1:
                return
            if mark == 0:
                raise SchedulerError(
                    "dependency cycle: " + " -> ".join(
                        chain + (job_id,)))
            state[job_id] = 0
            for dep in self.jobs[job_id].deps:
                visit(dep, chain + (job_id,))
            state[job_id] = 1

        for job_id in self._order:
            visit(job_id, ())

    # -- results -------------------------------------------------------

    def results(self) -> Dict[str, object]:
        """job id -> result for every succeeded job."""
        return {j.job_id: j.result for j in self.jobs.values()
                if j.status == SUCCEEDED}

    def counts(self) -> Dict[str, int]:
        """Status -> job count."""
        out: Dict[str, int] = {}
        for job in self.jobs.values():
            out[job.status] = out.get(job.status, 0) + 1
        return out
