"""Picklable job specs and the job-type registry.

A job is data, not code: a :class:`JobSpec` names a registered *job
type* and carries JSON-able parameters, a seed, and an execution
policy (timeout, retries).  Workers look the type up in the registry
and run its function — so specs cross process boundaries as small
pickles, hash stably into artifact-store keys, and can be audited
statically (``scripts/check_jobs.py``).

Job functions take ``(params, ctx)`` where ``ctx`` is a
:class:`JobContext` giving the seed, an artifact store opened in the
worker, and the results of dependency jobs.  They must be
deterministic in ``(params, seed)`` — that is the contract that makes
the content-addressed cache sound — and return a JSON-able dict.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Mapping, Optional

from ..netlist import canonical_json, stable_hash

#: Registered job types: name -> (function, sample params for audit).
_JOB_TYPES: Dict[str, "JobType"] = {}


@dataclass(frozen=True)
class JobType:
    """A registered job kind: its function and auditable samples."""

    name: str
    fn: Callable
    #: Parameters exercising the spec path (never *run* by the audit);
    #: every registered type must provide them so ``check_jobs`` can
    #: prove pickle round-trip and hash stability.
    sample_params: Mapping[str, object] = field(default_factory=dict)
    #: A representative return value.  The audit proves it pickles and
    #: is JSON-able — i.e. the result can cross the worker pipe and
    #: carries no process-local handles (compiled programs, solver
    #: engines, open stores), which is the contract that keeps warm
    #: workers' caches *inside* the worker.
    sample_result: Mapping[str, object] = field(default_factory=dict)


def register_job_type(name: str,
                      sample_params: Optional[Mapping[str, object]] = None,
                      sample_result: Optional[Mapping[str, object]] = None):
    """Decorator: register ``fn`` as the implementation of ``name``."""
    def wrap(fn: Callable) -> Callable:
        if name in _JOB_TYPES:
            raise ValueError(f"duplicate job type {name!r}")
        _JOB_TYPES[name] = JobType(name, fn, dict(sample_params or {}),
                                   dict(sample_result or {}))
        return fn
    return wrap


def registered_job_types() -> Dict[str, JobType]:
    """Name -> :class:`JobType` view of the registry (copy)."""
    return dict(_JOB_TYPES)


def job_function(name: str) -> Callable:
    """The implementation of a registered job type."""
    try:
        return _JOB_TYPES[name].fn
    except KeyError:
        known = ", ".join(sorted(_JOB_TYPES))
        raise KeyError(
            f"unknown job type {name!r}; registered: {known}") from None


@dataclass
class JobContext:
    """Execution-side view handed to a job function."""

    seed: int = 0
    store: Optional[object] = None      # ArtifactStore, opened per worker
    dep_results: Dict[str, object] = field(default_factory=dict)


@dataclass(frozen=True)
class JobSpec:
    """What to run: a declarative, picklable, hashable job description.

    ``params`` must be JSON-able (scalars / lists / dicts) — enforced
    eagerly so a bad spec fails at submission, in the submitting
    process, not inside a worker.  ``timeout`` is wall seconds (None =
    unbounded); ``retries`` is the number of *additional* attempts
    granted after a crash; ``retry_backoff`` the base delay, doubled
    per attempt.  Timeouts are terminal by default
    (``retry_on_timeout=False``): a job that exceeds its budget once
    is presumed to again.  ``cacheable=False`` opts a job out of the
    artifact-store result cache — for work that is not a pure function
    of ``(params, seed)``, e.g. wall-clock benchmarking.
    """

    job_type: str
    #: Canonical JSON encoding of the params mapping.  A string keeps
    #: the spec hashable and makes round-tripping *unambiguous*: a
    #: list of two-element lists stays a list and an empty dict stays
    #: a dict, which no tuple-based freezing can guarantee.  Key order
    #: is canonical, so two specs differing only in dict insertion
    #: order are equal.
    params_json: str = "{}"
    seed: int = 0
    timeout: Optional[float] = None
    retries: int = 0
    retry_backoff: float = 0.05
    retry_on_timeout: bool = False
    cacheable: bool = True

    def __init__(self, job_type: str,
                 params: Optional[Mapping[str, object]] = None,
                 seed: int = 0, timeout: Optional[float] = None,
                 retries: int = 0, retry_backoff: float = 0.05,
                 retry_on_timeout: bool = False,
                 cacheable: bool = True) -> None:
        # canonical_json raises TypeError on non-JSON values.
        object.__setattr__(self, "params_json",
                           canonical_json(dict(params or {})))
        object.__setattr__(self, "job_type", job_type)
        object.__setattr__(self, "seed", seed)
        object.__setattr__(self, "timeout", timeout)
        object.__setattr__(self, "retries", retries)
        object.__setattr__(self, "retry_backoff", retry_backoff)
        object.__setattr__(self, "retry_on_timeout", retry_on_timeout)
        object.__setattr__(self, "cacheable", cacheable)

    @property
    def params_dict(self) -> Dict[str, object]:
        """Parameters back as a plain dict (fresh parse, lossless)."""
        return json.loads(self.params_json)

    @property
    def spec_hash(self) -> str:
        """Content hash of the *computation* this spec names.

        Covers job type, parameters, and seed — not the execution
        policy (timeout/retries), which changes how hard we try, not
        what is computed.  This is the artifact-store key: same hash,
        same result.
        """
        return stable_hash({"job_type": self.job_type,
                            "params": self.params_dict,
                            "seed": self.seed})

    def describe(self) -> str:
        return f"{self.job_type}[{self.spec_hash[:10]}]"


def run_job(spec: JobSpec, ctx: JobContext):
    """Execute a spec's function in the current process."""
    return job_function(spec.job_type)(spec.params_dict, ctx)


# ----------------------------------------------------------------------
# Stock job types — the service's production workloads
# ----------------------------------------------------------------------


@register_job_type("locking-point", sample_params={
    "netlist": "0" * 64, "key_bits": 4, "max_iterations": 100,
    "baseline_area": None}, sample_result={
    "key_bits": 4, "area": 12.5, "sat_attack_iterations": 3,
    "attack_seconds": 0.01, "attack_gave_up": False})
def _locking_point_job(params: Dict[str, object], ctx: JobContext):
    """One point of a locking sweep: lock at ``key_bits``, SAT-attack.

    ``params['netlist']`` is an artifact-store digest; the worker
    rebuilds the netlist (insertion order preserved), so the seeded
    site selection — and therefore the attack transcript — is
    bit-identical to a serial run on the original object.
    """
    from ..core.dse import measure_locking_point

    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    baseline = params.get("baseline_area")
    point = measure_locking_point(
        netlist, int(params["key_bits"]), seed=ctx.seed,
        max_iterations=int(params.get("max_iterations", 400)),
        baseline_area=None if baseline is None else float(baseline))
    return {
        "key_bits": point.key_bits,
        "area": point.area,
        "sat_attack_iterations": point.sat_attack_iterations,
        "attack_seconds": point.attack_seconds,
        "attack_gave_up": point.attack_gave_up,
    }


@register_job_type("composition-stack", sample_params={
    "design": "masked-and", "stack": ["duplication"],
    "engine": {"n_traces": 400, "noise_sigma": 0.25,
               "n_fault_vectors": 16}}, sample_result={
    "design": "masked-and", "stack": ["duplication"],
    "sca_leaks": False, "fia_detected": 1.0, "area": 40.0})
def _composition_stack_job(params: Dict[str, object], ctx: JobContext):
    """One cross-effect matrix row: compose a named stack, re-verify.

    Designs and countermeasures are addressed by registry name
    (:mod:`repro.core.designs`) because they hold closures that cannot
    cross process boundaries.
    """
    from ..core import CompositionEngine

    engine_params = dict(params.get("engine", {}))
    engine = CompositionEngine(seed=ctx.seed, **{
        k: v for k, v in engine_params.items()
        if k in ("n_traces", "noise_sigma", "n_fault_vectors",
                 "tvla_threshold")})
    return engine.evaluate_stack_row(str(params["design"]),
                                     list(params["stack"]))


@register_job_type("netlist-ppa", sample_params={"netlist": "0" * 64},
                   sample_result={"area": 10.0, "delay": 3.0,
                                  "leakage_power": 0.2, "cells": 6})
def _netlist_ppa_job(params: Dict[str, object], ctx: JobContext):
    """PPA report of a stored netlist (cheap; DAG glue and smoke tests)."""
    from ..netlist import ppa_report

    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    ppa = ppa_report(netlist)
    return {"area": ppa.area, "delay": ppa.delay,
            "leakage_power": ppa.leakage_power,
            "cells": netlist.num_cells()}


@register_job_type("pytest-bench", sample_params={
    "target": "benchmarks/bench_fig1.py", "flags": [],
    "cwd": ".", "pythonpath": "src"}, sample_result={
    "target": "benchmarks/bench_fig1.py", "returncode": 0,
    "doc": None, "tail": ""})
def _pytest_bench_job(params: Dict[str, object], ctx: JobContext):
    """Run one pytest-benchmark target; return its benchmark JSON.

    The fan-out unit of ``run_bench.py --jobs N``.  Timing results are
    not a pure function of the spec, so submit these with
    ``cacheable=False``.
    """
    import os
    import subprocess
    import sys
    import tempfile

    del ctx
    cwd = str(params.get("cwd", "."))
    with tempfile.NamedTemporaryFile(suffix=".json",
                                     delete=False) as handle:
        out_path = handle.name
    env = dict(os.environ)
    pythonpath = str(params.get("pythonpath", ""))
    if pythonpath:
        env["PYTHONPATH"] = (pythonpath + os.pathsep
                             + env.get("PYTHONPATH", ""))
    cmd = [sys.executable, "-m", "pytest", "-q", str(params["target"]),
           *[str(f) for f in params.get("flags", [])],
           f"--benchmark-json={out_path}"]
    proc = subprocess.run(cmd, cwd=cwd, env=env, capture_output=True,
                          text=True)
    try:
        with open(out_path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError):
        doc = None
    finally:
        try:
            os.unlink(out_path)
        except OSError:
            pass
    return {
        "target": params["target"],
        "returncode": proc.returncode,
        "doc": doc,
        "tail": proc.stdout[-2000:] + proc.stderr[-1000:],
    }


@register_job_type("route", sample_params={
    "netlist": "0" * 64, "num_layers": None,
    "placement_iterations": 2000}, sample_result={
    "layout": "0" * 64, "nets": 5, "wirelength": 42, "vias": 3,
    "failed_nets": []})
def _route_job(params: Dict[str, object], ctx: JobContext):
    """Place and maze-route a stored netlist; publish the layout.

    Placement (annealing, seeded from the spec) and routing are both
    deterministic in ``(params, seed)``, so the routed geometry — and
    therefore the returned wirelength/via/failure figures — is
    bit-identical wherever the job runs.  The full
    :class:`~repro.physical.routing.RoutedLayout` dict is published to
    the store under its content digest for downstream jobs.
    """
    from ..physical import annealing_placement, maze_route

    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    placement = annealing_placement(
        netlist, iterations=int(params.get("placement_iterations", 2000)),
        seed=ctx.seed).placement
    num_layers = params.get("num_layers")
    if num_layers is None:
        layout = maze_route(netlist, placement)
    else:
        layout = maze_route(netlist, placement,
                            num_layers=int(num_layers))
    doc = layout.to_dict()
    digest = stable_hash(doc)
    ctx.store.put(digest, doc)
    return {"layout": digest,
            "nets": len(layout.nets),
            "wirelength": layout.total_wirelength,
            "vias": layout.total_vias,
            "failed_nets": list(layout.failed)}


@register_job_type("closure", sample_params={
    "netlist": "0" * 64,
    "thresholds": {"probing": 0.05, "fia": 0.30, "trojan": 0.05},
    "num_layers": None, "max_iterations": 4,
    "placement_iterations": 2000}, sample_result={
    "closed": True, "iterations": 2, "layout": "0" * 64,
    "metrics": {"probing": 0.01}})
def _closure_job(params: Dict[str, object], ctx: JobContext):
    """Run iterative security closure on a stored netlist.

    Returns :meth:`~repro.physical.closure.ClosureResult.to_dict` with
    the trace's wall times stripped — the one non-deterministic part —
    so the result is a pure function of ``(params, seed)`` and the
    artifact cache stays sound.  The closed layout is published to the
    store under ``result['layout']``.
    """
    from ..physical import ClosureThresholds, security_closure

    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    bounds = {k: float(v)
              for k, v in dict(params.get("thresholds", {})).items()}
    num_layers = params.get("num_layers")
    result = security_closure(
        netlist,
        thresholds=ClosureThresholds(**bounds),
        num_layers=None if num_layers is None else int(num_layers),
        max_iterations=int(params.get("max_iterations", 4)),
        placement_iterations=int(
            params.get("placement_iterations", 2000)),
        seed=ctx.seed)
    doc = result.to_dict()
    for prov in doc["trace"]["passes"]:
        prov.pop("wall_ms", None)
    doc["trace"].pop("total_wall_ms", None)
    layout_doc = result.layout.to_dict()
    layout_digest = stable_hash(layout_doc)
    ctx.store.put(layout_digest, layout_doc)
    doc["layout"] = layout_digest
    return doc


def evaluate_variants(netlist, variants, n_vectors: int = 64,
                      seed: int = 0):
    """Score a family of variant specs on shared seeded random vectors.

    The per-variant kernel behind the ``variant-eval`` and
    ``variant-batch`` job types.  The stimulus depends only on
    ``(netlist, n_vectors, seed)`` and each variant's packed slice is
    bit-identical to evaluating that variant alone, so a variant's
    result is a pure function of ``(netlist, variant, n_vectors,
    seed)`` — batching is invisible to the artifact cache.  Returns one
    JSON-able dict per variant: hex-packed output words, the vector
    count, and a stable digest of the outputs.
    """
    import random

    from ..netlist import (
        VariantFamily, VariantSpec, get_compiled, random_stimulus,
    )

    specs = [v if isinstance(v, VariantSpec) else VariantSpec.from_dict(v)
             for v in variants]
    rng = random.Random(seed)
    stimulus = random_stimulus(netlist.inputs, n_vectors, rng)
    family = VariantFamily(netlist, specs)
    words = family.eval_words(stimulus, n_vectors)
    compiled = get_compiled(netlist)
    mask = (1 << n_vectors) - 1
    results = []
    for v in range(len(specs)):
        shift = v * n_vectors
        outputs = {
            o: hex((words[compiled.index[o]] >> shift) & mask)
            for o in netlist.outputs
        }
        results.append({
            "outputs": outputs,
            "n_vectors": n_vectors,
            "digest": stable_hash(outputs),
        })
    return results


@register_job_type("variant-eval", sample_params={
    "netlist": "0" * 64,
    "variant": {"inputs": {}, "forces": {}, "flips": ["g0"],
                "opcodes": {}},
    "n_vectors": 16}, sample_result={
    "outputs": {"out": "0xffff"}, "n_vectors": 16,
    "digest": "0" * 64})
def _variant_eval_job(params: Dict[str, object], ctx: JobContext):
    """Score one design variant on seeded random vectors.

    The cache unit of a variant sweep: the spec hash covers (netlist
    digest, canonical variant delta, vector count, seed).  A
    ``variant-batch`` job publishes its per-variant results under these
    exact spec hashes, so serial and batched executions interleave in
    the artifact cache bit-identically.
    """
    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    return evaluate_variants(
        netlist, [params["variant"]],
        n_vectors=int(params.get("n_vectors", 64)), seed=ctx.seed)[0]


@register_job_type("variant-batch", sample_params={
    "netlist": "0" * 64,
    "variants": [{"inputs": {}, "forces": {}, "flips": ["g0"],
                  "opcodes": {}}],
    "n_vectors": 16}, sample_result={
    "results": [{"outputs": {"out": "0xffff"}, "n_vectors": 16,
                 "digest": "0" * 64}],
    "variant_hashes": ["0" * 64]})
def _variant_batch_job(params: Dict[str, object], ctx: JobContext):
    """Score a whole variant family in one batched evaluation.

    The execution detail behind
    :func:`repro.service.variant_sweep_campaign`: all variants share
    one lowering of the stored netlist
    (:class:`~repro.netlist.VariantFamily`), and each per-variant
    result is also published to the store under the spec hash of the
    equivalent ``variant-eval`` job — later per-variant resubmissions
    are pure cache hits.
    """
    from ..netlist import VariantSpec

    netlist_digest = str(params["netlist"])
    netlist = ctx.store.get_netlist(netlist_digest)
    if netlist is None:
        raise RuntimeError(f"input netlist {netlist_digest!r} not in store")
    n_vectors = int(params.get("n_vectors", 64))
    canonical = [VariantSpec.from_dict(v).to_dict()
                 for v in params["variants"]]
    results = evaluate_variants(netlist, canonical,
                                n_vectors=n_vectors, seed=ctx.seed)
    variant_hashes = []
    for variant, result in zip(canonical, results):
        eval_spec = JobSpec(
            "variant-eval",
            params={"netlist": netlist_digest, "variant": variant,
                    "n_vectors": n_vectors},
            seed=ctx.seed)
        ctx.store.put(eval_spec.spec_hash,
                      {"result": result,
                       "job_type": "variant-eval",
                       "seed": ctx.seed})
        variant_hashes.append(eval_spec.spec_hash)
    return {"results": results, "variant_hashes": variant_hashes}


@register_job_type("pass-pipeline", sample_params={
    "netlist": "0" * 64,
    "passes": [["synthesis", {}]]}, sample_result={
    "trace": {"passes": []}, "result_netlist": "0" * 64})
def _pass_pipeline_job(params: Dict[str, object], ctx: JobContext):
    """Run a named pass pipeline over a stored netlist.

    ``params['passes']`` is a list of ``[pass name, ctor kwargs]``
    pairs resolved through the flow pass registry.  The transformed
    netlist is published back into the store and the full
    :class:`~repro.flow.manager.FlowTrace` dict is returned — the
    round-trip (``FlowTrace.from_dict``) reconstructs it client-side.
    """
    from ..flow import PassManager, create_pass, netlist_design

    netlist = ctx.store.get_netlist(str(params["netlist"]))
    if netlist is None:
        raise RuntimeError(
            f"input netlist {params['netlist']!r} not in store")
    passes = [create_pass(str(name), **dict(kwargs))
              for name, kwargs in params["passes"]]
    manager = PassManager(seed=ctx.seed)
    outcome = manager.run(netlist_design(netlist, seed=ctx.seed), passes)
    result_digest = ctx.store.put_netlist(outcome.design.netlist)
    return {"trace": outcome.trace.to_dict(),
            "result_netlist": result_digest}
