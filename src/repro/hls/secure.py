"""Security-driven HLS passes (paper Sec. III-A).

Three countermeasures the paper asks HLS tools to automate:

* **register flushing** — overwrite registers holding critical data
  right after their last use (the paper's own "simple countermeasure
  against SCAs");
* **first-order masking** — rewrite ``y = SBOX[pt ^ k]`` into a masked
  evaluation with an allocated RNG, so no DFG value carries the bare
  key-dependent byte;
* **operation shuffling** — randomized schedule tie-breaks (done in
  :func:`repro.hls.schedule.list_schedule` via ``shuffle_seed``), with
  an evaluator here quantifying the temporal misalignment it buys.

Each pass reports its cost so the composition engine can weigh it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..crypto import SBOX
from .dfg import Dfg, Label, OpType
from .ift import taint_analysis
from .schedule import OP_LATENCY, Schedule, list_schedule


def insert_register_flushes(dfg: Dfg,
                            labels: Optional[Mapping[str, Label]] = None
                            ) -> Tuple[Dfg, List[str]]:
    """Add a FLUSH consumer after the last use of every SECRET value.

    Returns the new DFG and the list of flush ops inserted.  The flush
    op keeps the value's register busy one extra cycle but then clears
    it; downstream, :func:`flushed_exposure` scores the improvement.
    """
    labels = labels or taint_analysis(dfg).labels
    flushed = Dfg(dfg.name + "_flush")
    for name in dfg.topological_order():
        op = dfg.ops[name]
        flushed.add(name, op.op, list(op.args), op.value, op.label)
    inserted: List[str] = []
    for name, label in labels.items():
        op = dfg.ops[name]
        if label is not Label.SECRET:
            continue
        if op.op in (OpType.OUTPUT, OpType.FLUSH):
            continue
        flush_name = f"flush_{name}"
        flushed.add(flush_name, OpType.FLUSH, [name])
        inserted.append(flush_name)
    return flushed, inserted


def flushed_exposure(schedule: Schedule,
                     labels: Mapping[str, Label]) -> int:
    """Secret register-cycles, counting a FLUSH as ending the lifetime.

    Without flushing, a secret's register keeps its value until
    overwritten by some later allocation — modeled pessimistically as
    the full schedule latency; with a flush consumer, exposure ends at
    the flush cycle.
    """
    dfg = schedule.dfg
    consumers = dfg.consumers()
    total = 0
    horizon = schedule.latency
    for name, op in dfg.ops.items():
        if labels.get(name) is not Label.SECRET:
            continue
        if op.op in (OpType.OUTPUT, OpType.FLUSH):
            continue
        birth = schedule.start[name] + OP_LATENCY[op.op]
        flushes = [
            c for c in consumers[name]
            if dfg.ops[c].op is OpType.FLUSH
        ]
        if flushes:
            end = min(schedule.start[f] for f in flushes)
        else:
            end = horizon  # lives until the kernel retires
        total += max(0, end - birth)
    return total


def mask_sbox_kernel() -> Dfg:
    """First-order masked ``SBOX[pt ^ k]`` kernel.

    The classic masked-table scheme: with input mask ``m_in`` and
    output mask ``m_out`` (fresh randoms), the datapath computes via an
    internally masked S-box unit ``MSBOX(x, m_in, m_out) =
    SBOX[x ^ m_in] ^ m_out``, so the bare value ``pt ^ key`` never
    appears in a register.  The consumer receives ``(ct_m, m_out)``
    shares.  Gadget-level security of the unit itself is the subject of
    :mod:`repro.sca.masking`; here the HLS view allocates the RNG and
    keeps every register value masked.
    """
    g = Dfg("aes_round1_masked")
    g.add("pt", OpType.INPUT, label=Label.PUBLIC)
    g.add("key", OpType.INPUT, label=Label.SECRET)
    g.add("m_in", OpType.RAND)
    g.add("m_out", OpType.RAND)
    g.add("key_m", OpType.XOR, ["key", "m_in"])      # key ^ m_in
    g.add("ark_m", OpType.XOR, ["pt", "key_m"])      # pt ^ key ^ m_in
    g.add("sb_m", OpType.MSBOX, ["ark_m", "m_in", "m_out"])
    g.add("ct_m", OpType.OUTPUT, ["sb_m"])
    g.add("mask_out", OpType.OUTPUT, ["m_out"])
    return g


def multi_byte_kernel(n_bytes: int = 4, masked: bool = False) -> Dfg:
    """``n_bytes`` independent first-round S-box lanes.

    Sharing one S-box unit across lanes gives the scheduler real
    freedom, which is what the shuffling countermeasure exploits: with
    random tie-breaks the attacked byte's S-box evaluation lands in a
    different cycle per trace, spreading its leakage over ``n_bytes``
    time samples.  Inputs are ``pt``/``key`` (the attacked lane 0) and
    ``pt1..``/``key1..``.
    """
    g = Dfg(f"aes_round1_x{n_bytes}" + ("_masked" if masked else ""))
    for lane in range(n_bytes):
        suffix = "" if lane == 0 else str(lane)
        g.add(f"pt{suffix}", OpType.INPUT, label=Label.PUBLIC)
        g.add(f"key{suffix}", OpType.INPUT, label=Label.SECRET)
        g.add(f"ark{suffix}", OpType.XOR, [f"pt{suffix}", f"key{suffix}"])
        if masked:
            g.add(f"mi{suffix}", OpType.RAND)
            g.add(f"mo{suffix}", OpType.RAND)
            g.add(f"arkm{suffix}", OpType.XOR,
                  [f"ark{suffix}", f"mi{suffix}"])
            g.add(f"sb{suffix}", OpType.MSBOX,
                  [f"arkm{suffix}", f"mi{suffix}", f"mo{suffix}"])
        else:
            g.add(f"sb{suffix}", OpType.SBOX, [f"ark{suffix}"])
        g.add(f"ct{suffix}", OpType.OUTPUT, [f"sb{suffix}"])
    return g


@dataclass
class HlsLeakageResult:
    """Cycle-accurate HLS-level leakage evaluation."""

    cpa_rank_of_true_key: int
    max_correlation: float
    traces_used: int


def hls_power_trace(dfg: Dfg, schedule: Schedule,
                    inputs: Mapping[str, int],
                    randoms: Mapping[str, int],
                    noise_sigma: float,
                    rng: np.random.Generator) -> np.ndarray:
    """One power trace: per-cycle Hamming weight of produced values."""
    values = dfg.evaluate(inputs, randoms)
    n_cycles = schedule.latency + 1
    trace = np.zeros(n_cycles)
    for name, op in dfg.ops.items():
        if OP_LATENCY[op.op] == 0:
            continue
        cycle = schedule.start[name] + OP_LATENCY[op.op] - 1
        trace[min(cycle, n_cycles - 1)] += int(values[name]).bit_count()
    if noise_sigma > 0:
        trace = trace + rng.normal(0.0, noise_sigma, trace.shape)
    return trace


def evaluate_hls_cpa(dfg: Dfg, true_key: int,
                     resources: Optional[Dict[str, int]] = None,
                     n_traces: int = 1500,
                     noise_sigma: float = 1.0,
                     shuffle: bool = False,
                     seed: int = 0) -> HlsLeakageResult:
    """CPA against the HLS-level power model of a kernel.

    The kernel must expose inputs ``pt`` and ``key``.  With
    ``shuffle=True`` each trace is scheduled with a fresh random
    tie-break seed, modeling runtime operation shuffling.
    """
    from ..sca import cpa_attack

    resources = resources or {"alu": 1, "sbox": 1, "mul": 1, "rng": 1}
    rng_np = np.random.default_rng(seed)
    rng_py = random.Random(seed)
    base_schedule = list_schedule(dfg, resources)
    horizon = base_schedule.latency + 4  # headroom for shuffled variants
    traces = np.zeros((n_traces, horizon))
    pts = []
    random_names = dfg.randoms()
    # Non-attacked lanes: keys fixed per device, plaintexts random.
    other_inputs = [i for i in dfg.inputs() if i not in ("pt", "key")]
    fixed_other_keys = {
        name: rng_py.randrange(256)
        for name in other_inputs if name.startswith("key")
    }
    for t in range(n_traces):
        pt = rng_py.randrange(256)
        pts.append(pt)
        stimulus = {"pt": pt, "key": true_key}
        for name in other_inputs:
            stimulus[name] = fixed_other_keys.get(
                name, rng_py.randrange(256))
        randoms = {name: rng_py.randrange(256) for name in random_names}
        schedule = (list_schedule(dfg, resources,
                                  shuffle_seed=rng_py.randrange(1 << 30))
                    if shuffle else base_schedule)
        trace = hls_power_trace(
            dfg, schedule, stimulus, randoms, noise_sigma, rng_np)
        traces[t, :min(len(trace), horizon)] = trace[:horizon]
    result = cpa_attack(traces, pts)
    return HlsLeakageResult(
        cpa_rank_of_true_key=result.rank_of(true_key),
        max_correlation=abs(result.best_corr),
        traces_used=n_traces,
    )
