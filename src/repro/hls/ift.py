"""Information-flow tracking and quantitative information flow (QIF).

The HLS-stage evaluation schemes of Table II: taint tracking in the
style of TaintHLS [14] validates where secrets can flow, and QIF (refs
[47]-[49]) upgrades the boolean answer to *how many bits* can leak, via
channel-capacity enumeration (min-entropy leakage of a deterministic
channel = log2 of the number of distinguishable outputs).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Set

from .dfg import Dfg, Label, OpType


@dataclass
class TaintReport:
    """Which values a secret can reach."""

    labels: Dict[str, Label]
    tainted_outputs: List[str]
    healed_by_masking: List[str]   # nodes where RANDOM healed SECRET

    @property
    def any_output_tainted(self) -> bool:
        return bool(self.tainted_outputs)


def taint_analysis(dfg: Dfg, masking_aware: bool = True) -> TaintReport:
    """Forward taint propagation over the DFG.

    Standard lattice: any SECRET operand taints the result.  With
    ``masking_aware`` (the refinement masking verification needs),
    ``XOR(SECRET, RANDOM)`` yields RANDOM — a uniformly distributed
    value independent of the secret — provided the random operand is a
    *fresh* RAND source used nowhere else (checked via fanout).
    """
    consumers = dfg.consumers()
    labels: Dict[str, Label] = {}
    healed: List[str] = []
    for name in dfg.topological_order():
        op = dfg.ops[name]
        if op.op in (OpType.INPUT, OpType.RAND, OpType.CONST):
            labels[name] = (Label.RANDOM if op.op is OpType.RAND
                            else op.label)
            continue
        arg_labels = [labels[a] for a in op.args]
        if op.op is OpType.MSBOX and masking_aware:
            # Internally masked unit: the output carries the fresh
            # output mask, independent of the (masked) data input.
            if labels[op.args[2]] is Label.RANDOM:
                labels[name] = Label.RANDOM
                healed.append(name)
                continue
        if op.op is OpType.XOR and masking_aware:
            secret_args = [a for a, l in zip(op.args, arg_labels)
                           if l is Label.SECRET]
            fresh_randoms = [
                a for a, l in zip(op.args, arg_labels)
                if l is Label.RANDOM
                and dfg.ops[a].op is OpType.RAND
                and len(consumers[a]) == 1
            ]
            if secret_args and fresh_randoms:
                labels[name] = Label.RANDOM
                healed.append(name)
                continue
        if Label.SECRET in arg_labels:
            labels[name] = Label.SECRET
        elif Label.RANDOM in arg_labels:
            # Independent of the secret, but no longer provably fresh
            # (it must not heal a later XOR — the fanout check above
            # only accepts direct single-use RAND sources).
            labels[name] = Label.RANDOM
        else:
            labels[name] = Label.PUBLIC
    tainted = [
        o for o in dfg.outputs() if labels[o] is Label.SECRET
    ]
    return TaintReport(labels, tainted, healed)


def qif_channel_capacity(channel: Callable[[int, int], int],
                         secret_bits: int, public_bits: int,
                         max_enumeration: int = 1 << 20) -> float:
    """Min-entropy leakage of ``output = channel(secret, public)``.

    For a deterministic channel and uniform secret, the multiplicative
    leakage equals the maximum (over public inputs) number of distinct
    outputs; leakage in bits is its log2.  Exhaustive over the declared
    bit widths (use small widths — this is the approximate-model-
    counting use case of [49] writ small).
    """
    if (1 << (secret_bits + public_bits)) > max_enumeration:
        raise ValueError("enumeration bound exceeded; reduce bit widths")
    worst = 1
    for pub in range(1 << public_bits):
        outputs: Set[int] = set()
        for sec in range(1 << secret_bits):
            outputs.add(channel(sec, pub))
        worst = max(worst, len(outputs))
    return math.log2(worst)


def dfg_output_leakage(dfg: Dfg, output: str,
                       secret_input: str, public_input: str,
                       bits: int = 8,
                       randoms_zero: bool = True) -> float:
    """QIF of one DFG output w.r.t. one secret input (others fixed 0).

    With ``randoms_zero`` the RNG is modeled as an attacker-known
    constant — the *worst case* for masked designs (masking's security
    collapses if the RNG is frozen), which is exactly the situation a
    verification flow must flag.
    """
    other_inputs = [i for i in dfg.inputs()
                    if i not in (secret_input, public_input)]

    def channel(secret: int, public: int) -> int:
        stim = {secret_input: secret, public_input: public}
        for name in other_inputs:
            stim[name] = 0
        values = dfg.evaluate(stim)
        return values[output]

    return qif_channel_capacity(channel, bits, bits)
