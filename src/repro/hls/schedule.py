"""Operation scheduling: ASAP, ALAP, resource-constrained list scheduling.

The classical HLS core.  Security hooks appear as two extras: a random
*shuffle* tiebreak (temporal jitter against SCA alignment) and the
latency/resource reporting the secure-composition flow consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from .dfg import Dfg, OpType

#: Cycles each operation occupies its functional unit.
OP_LATENCY = {
    OpType.INPUT: 0, OpType.CONST: 0, OpType.RAND: 1,
    OpType.ADD: 1, OpType.XOR: 1, OpType.AND: 1, OpType.OR: 1,
    OpType.NOT: 1, OpType.MUL: 2, OpType.SBOX: 1, OpType.MSBOX: 2,
    OpType.OUTPUT: 0,
    OpType.FLUSH: 1,
}

#: Which functional-unit class executes each op.
UNIT_CLASS = {
    OpType.ADD: "alu", OpType.XOR: "alu", OpType.AND: "alu",
    OpType.OR: "alu", OpType.NOT: "alu", OpType.FLUSH: "alu",
    OpType.MUL: "mul", OpType.SBOX: "sbox", OpType.MSBOX: "sbox",
    OpType.RAND: "rng",
}


@dataclass
class Schedule:
    """Start cycle per operation plus derived stats."""

    start: Dict[str, int]
    dfg: Dfg

    @property
    def latency(self) -> int:
        ends = [
            self.start[name] + OP_LATENCY[self.dfg.ops[name].op]
            for name in self.start
        ]
        return max(ends) if ends else 0

    def ops_in_cycle(self, cycle: int) -> List[str]:
        """Operations occupying a functional unit during ``cycle``."""
        return [
            name for name, s in self.start.items()
            if s <= cycle < s + max(1, OP_LATENCY[self.dfg.ops[name].op])
            and OP_LATENCY[self.dfg.ops[name].op] > 0
        ]


def asap_schedule(dfg: Dfg) -> Schedule:
    """As-soon-as-possible schedule (unconstrained resources)."""
    start: Dict[str, int] = {}
    for name in dfg.topological_order():
        op = dfg.ops[name]
        ready = 0
        for a in op.args:
            ready = max(ready,
                        start[a] + OP_LATENCY[dfg.ops[a].op])
        start[name] = ready
    return Schedule(start, dfg)


def alap_schedule(dfg: Dfg, deadline: Optional[int] = None) -> Schedule:
    """As-late-as-possible schedule against a deadline (default: ASAP latency)."""
    asap = asap_schedule(dfg)
    horizon = deadline if deadline is not None else asap.latency
    consumers = dfg.consumers()
    start: Dict[str, int] = {}
    for name in reversed(dfg.topological_order()):
        op = dfg.ops[name]
        latest = horizon - OP_LATENCY[op.op]
        for c in consumers[name]:
            latest = min(latest, start[c] - OP_LATENCY[op.op])
        start[name] = max(0, latest)
    return Schedule(start, dfg)


def list_schedule(dfg: Dfg, resources: Mapping[str, int],
                  shuffle_seed: Optional[int] = None) -> Schedule:
    """Resource-constrained list scheduling (mobility priority).

    ``resources`` caps concurrent ops per unit class, e.g.
    ``{"alu": 2, "sbox": 1, "mul": 1, "rng": 1}``.  With
    ``shuffle_seed`` set, ready-list ties are broken randomly — the
    *operation shuffling* countermeasure (temporal misalignment against
    trace averaging) rather than deterministically.
    """
    asap = asap_schedule(dfg)
    alap = alap_schedule(dfg)
    mobility = {n: alap.start[n] - asap.start[n] for n in dfg.ops}
    rng = random.Random(shuffle_seed) if shuffle_seed is not None else None
    remaining = set(dfg.ops)
    start: Dict[str, int] = {}
    done_at: Dict[str, int] = {}
    cycle = 0
    while remaining:
        busy: Dict[str, int] = {}
        for name in start:
            op = dfg.ops[name]
            unit = UNIT_CLASS.get(op.op)
            if unit and start[name] <= cycle < done_at[name]:
                busy[unit] = busy.get(unit, 0) + 1
        ready = [
            n for n in remaining
            if all(a in done_at and done_at[a] <= cycle
                   for a in dfg.ops[n].args)
        ]
        if rng is not None:
            rng.shuffle(ready)
        ready.sort(key=lambda n: mobility[n])
        for name in ready:
            op = dfg.ops[name]
            unit = UNIT_CLASS.get(op.op)
            if unit is not None:
                cap = resources.get(unit, 1)
                if busy.get(unit, 0) >= cap:
                    continue
                busy[unit] = busy.get(unit, 0) + 1
            start[name] = cycle
            done_at[name] = cycle + OP_LATENCY[op.op]
            remaining.discard(name)
        cycle += 1
        if cycle > 10 * len(dfg.ops) + 10:
            raise RuntimeError("list scheduling failed to converge")
    return Schedule(start, dfg)
