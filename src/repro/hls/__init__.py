"""High-level synthesis: DFG, scheduling, binding, IFT/QIF, secure passes."""

from .dfg import Dfg, Label, Operation, OpType, aes_first_round_dfg
from .schedule import (
    OP_LATENCY,
    Schedule,
    UNIT_CLASS,
    alap_schedule,
    asap_schedule,
    list_schedule,
)
from .binding import (
    Binding,
    Lifetime,
    bind,
    left_edge_allocate,
    secret_exposure,
    value_lifetimes,
)
from .ift import (
    TaintReport,
    dfg_output_leakage,
    qif_channel_capacity,
    taint_analysis,
)
from .secure import (
    HlsLeakageResult,
    evaluate_hls_cpa,
    flushed_exposure,
    hls_power_trace,
    insert_register_flushes,
    mask_sbox_kernel,
    multi_byte_kernel,
)

__all__ = [
    "Dfg", "Label", "Operation", "OpType", "aes_first_round_dfg",
    "OP_LATENCY", "Schedule", "UNIT_CLASS", "alap_schedule",
    "asap_schedule", "list_schedule",
    "Binding", "Lifetime", "bind", "left_edge_allocate",
    "secret_exposure", "value_lifetimes",
    "TaintReport", "dfg_output_leakage", "qif_channel_capacity",
    "taint_analysis",
    "HlsLeakageResult", "evaluate_hls_cpa", "flushed_exposure",
    "hls_power_trace", "insert_register_flushes", "mask_sbox_kernel",
    "multi_byte_kernel",
]
