"""Dataflow graphs — the high-level synthesis input.

HLS (paper Sec. III-A) allocates functional units, binds operations,
and schedules execution.  The security extensions need two things the
classical representation lacks: *security labels* on values (secret /
public / random) and evaluation semantics (so leakage can be simulated
at this abstraction level before any netlist exists).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..crypto import SBOX


class OpType(enum.Enum):
    """Operation alphabet (8-bit datapath unless noted)."""

    INPUT = "input"
    CONST = "const"
    ADD = "add"
    MUL = "mul"
    XOR = "xor"
    AND = "and"
    OR = "or"
    NOT = "not"
    SBOX = "sbox"
    MSBOX = "msbox"    # masked S-box unit: SBOX[x ^ m_in] ^ m_out
    RAND = "rand"      # fresh random byte from the allocated RNG
    OUTPUT = "output"
    FLUSH = "flush"    # security op: clear a register after last use


class Label(enum.Enum):
    """Information-flow labels (lattice: PUBLIC < SECRET; RANDOM is the
    masking-aware refinement that *heals* taint when XOR-ed in)."""

    PUBLIC = "public"
    SECRET = "secret"
    RANDOM = "random"


@dataclass
class Operation:
    """One DFG node."""

    name: str
    op: OpType
    args: List[str] = field(default_factory=list)
    value: Optional[int] = None          # for CONST
    label: Label = Label.PUBLIC          # for INPUT/RAND sources

    @property
    def arity(self) -> int:
        return len(self.args)


_ARITY = {
    OpType.INPUT: 0, OpType.CONST: 0, OpType.RAND: 0,
    OpType.ADD: 2, OpType.MUL: 2, OpType.XOR: 2, OpType.AND: 2,
    OpType.OR: 2, OpType.NOT: 1, OpType.SBOX: 1, OpType.MSBOX: 3,
    OpType.OUTPUT: 1, OpType.FLUSH: 1,
}


class Dfg:
    """A named DAG of :class:`Operation` nodes."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.ops: Dict[str, Operation] = {}

    def add(self, name: str, op: OpType, args: Sequence[str] = (),
            value: Optional[int] = None,
            label: Label = Label.PUBLIC) -> str:
        """Add an operation node; returns its name."""
        if name in self.ops:
            raise ValueError(f"duplicate op {name!r}")
        if len(args) != _ARITY[op]:
            raise ValueError(
                f"{op.value} takes {_ARITY[op]} args, got {len(args)}")
        for a in args:
            if a not in self.ops:
                raise ValueError(f"unknown operand {a!r}")
        self.ops[name] = Operation(name, op, list(args), value, label)
        return name

    def inputs(self) -> List[str]:
        """INPUT node names in insertion order."""
        return [o.name for o in self.ops.values() if o.op is OpType.INPUT]

    def randoms(self) -> List[str]:
        """RAND (fresh randomness) node names."""
        return [o.name for o in self.ops.values() if o.op is OpType.RAND]

    def outputs(self) -> List[str]:
        """OUTPUT node names."""
        return [o.name for o in self.ops.values() if o.op is OpType.OUTPUT]

    def consumers(self) -> Dict[str, List[str]]:
        """Map each node to the nodes reading it."""
        out: Dict[str, List[str]] = {name: [] for name in self.ops}
        for op in self.ops.values():
            for a in op.args:
                out[a].append(op.name)
        return out

    def topological_order(self) -> List[str]:
        """Node names in dependency order (raises on cycles)."""
        indeg = {name: len(op.args) for name, op in self.ops.items()}
        consumers = self.consumers()
        ready = [n for n, d in indeg.items() if d == 0]
        order: List[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for c in consumers[n]:
                indeg[c] -= 1
                if indeg[c] == 0:
                    ready.append(c)
        if len(order) != len(self.ops):
            raise ValueError("DFG has a cycle")
        return order

    def evaluate(self, inputs: Mapping[str, int],
                 randoms: Optional[Mapping[str, int]] = None
                 ) -> Dict[str, int]:
        """8-bit interpretation of every node."""
        randoms = randoms or {}
        values: Dict[str, int] = {}
        for name in self.topological_order():
            op = self.ops[name]
            a = [values[x] for x in op.args]
            if op.op is OpType.INPUT:
                values[name] = inputs[name] & 0xFF
            elif op.op is OpType.CONST:
                values[name] = (op.value or 0) & 0xFF
            elif op.op is OpType.RAND:
                values[name] = randoms.get(name, 0) & 0xFF
            elif op.op is OpType.ADD:
                values[name] = (a[0] + a[1]) & 0xFF
            elif op.op is OpType.MUL:
                values[name] = (a[0] * a[1]) & 0xFF
            elif op.op is OpType.XOR:
                values[name] = a[0] ^ a[1]
            elif op.op is OpType.AND:
                values[name] = a[0] & a[1]
            elif op.op is OpType.OR:
                values[name] = a[0] | a[1]
            elif op.op is OpType.NOT:
                values[name] = (~a[0]) & 0xFF
            elif op.op is OpType.SBOX:
                values[name] = SBOX[a[0]]
            elif op.op is OpType.MSBOX:
                x, m_in, m_out = a
                values[name] = SBOX[x ^ m_in] ^ m_out
            elif op.op is OpType.OUTPUT:
                values[name] = a[0]
            elif op.op is OpType.FLUSH:
                values[name] = 0
            else:
                raise ValueError(f"cannot evaluate {op.op}")
        return values


def aes_first_round_dfg() -> Dfg:
    """The canonical HLS kernel: one byte of AES round 1.

    ``y = SBOX[pt ^ key]`` with labeled inputs — the workload every
    security-driven HLS experiment in this repo runs on.
    """
    g = Dfg("aes_round1_byte")
    g.add("pt", OpType.INPUT, label=Label.PUBLIC)
    g.add("key", OpType.INPUT, label=Label.SECRET)
    g.add("ark", OpType.XOR, ["pt", "key"])
    g.add("sb", OpType.SBOX, ["ark"])
    g.add("ct", OpType.OUTPUT, ["sb"])
    return g
