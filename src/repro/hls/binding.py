"""Resource binding and register allocation.

Binds scheduled operations to functional-unit instances and values to
registers by the left-edge algorithm over lifetimes.  Lifetime data is
also the security currency here: how long a secret-labelled value sits
in a register is exactly the exposure the register-flushing pass of
:mod:`repro.hls.secure` minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from .dfg import Label, OpType
from .schedule import OP_LATENCY, Schedule, UNIT_CLASS


@dataclass
class Lifetime:
    """A value's residency interval in the register file."""

    producer: str
    birth: int      # cycle the value becomes available
    death: int      # last cycle any consumer reads it
    label: Label

    @property
    def span(self) -> int:
        return max(0, self.death - self.birth)


def value_lifetimes(schedule: Schedule,
                    labels: Optional[Mapping[str, Label]] = None
                    ) -> List[Lifetime]:
    """Birth/death intervals for every produced value.

    ``labels`` (e.g. from taint analysis) attaches security labels;
    default is each op's own source label.
    """
    dfg = schedule.dfg
    consumers = dfg.consumers()
    lifetimes: List[Lifetime] = []
    for name, op in dfg.ops.items():
        if op.op in (OpType.OUTPUT, OpType.FLUSH):
            continue
        birth = schedule.start[name] + OP_LATENCY[op.op]
        uses = consumers[name]
        if not uses:
            death = birth
        else:
            death = max(schedule.start[u] for u in uses)
            # A FLUSH consumer *ends* the lifetime at its own cycle.
        label = (labels or {}).get(name, op.label)
        lifetimes.append(Lifetime(name, birth, death, label))
    return lifetimes


def left_edge_allocate(lifetimes: List[Lifetime]) -> Dict[str, int]:
    """Left-edge register allocation: value -> register index."""
    ordered = sorted(lifetimes, key=lambda lt: (lt.birth, lt.death))
    register_free_at: List[int] = []
    assignment: Dict[str, int] = {}
    for lt in ordered:
        placed = False
        for reg, free_at in enumerate(register_free_at):
            if free_at <= lt.birth:
                assignment[lt.producer] = reg
                register_free_at[reg] = lt.death
                placed = True
                break
        if not placed:
            assignment[lt.producer] = len(register_free_at)
            register_free_at.append(lt.death)
    return assignment


@dataclass
class Binding:
    """Complete binding: ops to unit instances, values to registers."""

    unit_of: Dict[str, Tuple[str, int]]   # op -> (class, instance)
    register_of: Dict[str, int]
    n_registers: int
    n_units: Dict[str, int]


def bind(schedule: Schedule,
         labels: Optional[Mapping[str, Label]] = None) -> Binding:
    """Greedy unit binding + left-edge register allocation."""
    dfg = schedule.dfg
    unit_of: Dict[str, Tuple[str, int]] = {}
    # Track per-class instance busy intervals.
    instances: Dict[str, List[int]] = {}   # class -> free-at per instance
    for name in sorted(dfg.ops, key=lambda n: schedule.start[n]):
        op = dfg.ops[name]
        unit_class = UNIT_CLASS.get(op.op)
        if unit_class is None:
            continue
        begin = schedule.start[name]
        end = begin + OP_LATENCY[op.op]
        pool = instances.setdefault(unit_class, [])
        for idx, free_at in enumerate(pool):
            if free_at <= begin:
                unit_of[name] = (unit_class, idx)
                pool[idx] = end
                break
        else:
            unit_of[name] = (unit_class, len(pool))
            pool.append(end)
    lifetimes = value_lifetimes(schedule, labels)
    registers = left_edge_allocate(lifetimes)
    return Binding(
        unit_of=unit_of,
        register_of=registers,
        n_registers=(max(registers.values()) + 1) if registers else 0,
        n_units={cls: len(pool) for cls, pool in instances.items()},
    )


def secret_exposure(schedule: Schedule,
                    labels: Mapping[str, Label]) -> int:
    """Total register-cycles during which secret values are resident.

    The quantitative target of the register-flushing countermeasure:
    every cycle a secret sits in a register is a cycle it leaks through
    the register file's power signature.
    """
    return sum(
        lt.span for lt in value_lifetimes(schedule, labels)
        if lt.label is Label.SECRET
    )
