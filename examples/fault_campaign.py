#!/usr/bin/env python
"""Fault-attack campaign: DFA vs the error-detection design space.

Blue team: protect an adder and an AES with detection/correction codes.
Red team: run DFA and fault campaigns against each.  DFX: discriminate
the attack stream from background soft errors and respond per policy.

Run:  python examples/fault_campaign.py
"""

import random

from repro.dft import ChipState, DfxController
from repro.fia import (
    DetectAndSuppressAES,
    DfaAttacker,
    Fault,
    FaultKind,
    InfectiveAES,
    attack_fault_stream,
    dfa_on_unprotected,
    duplicate_and_compare,
    fault_campaign,
    natural_fault_stream,
    parity_protect,
    residue_protect_adder,
    tmr_protect,
)
from repro.netlist import ppa_report, ripple_carry_adder


def detection_design_space() -> None:
    print("== error-detection design space (4-bit adder) ==")
    payload = ripple_carry_adder(4)
    base_area = ppa_report(payload).area
    schemes = {
        "duplication": duplicate_and_compare(payload),
        "parity": parity_protect(payload),
        "residue-3": residue_protect_adder(4),
        "TMR": tmr_protect(payload),
    }
    print(f"   {'scheme':<12} {'area x':>7} {'coverage':>9} "
          f"{'silent':>7}")
    for name, protected in schemes.items():
        faults = [Fault(g, FaultKind.STUCK_AT_0)
                  for g in protected.netlist.gates
                  if g.startswith(("m_", "r0_"))]
        report = fault_campaign(protected.netlist, faults, 128,
                                alarm=protected.alarm,
                                payload_outputs=protected.payload_outputs)
        area = ppa_report(protected.netlist).area / base_area
        coverage = (report.coverage if report.propagating
                    else float("nan"))
        print(f"   {name:<12} {area:>7.2f} {report.coverage:>9.2f} "
              f"{report.silent:>7}")


def dfa_matrix() -> None:
    print("== DFA vs countermeasures (AES-128) ==")
    key = [random.Random(1).randrange(256) for _ in range(16)]
    bare = dfa_on_unprotected(key, seed=2, max_faults_per_byte=6)
    print(f"   bare AES:        key recovered = {bare.success} "
          f"({bare.faults_used} faulty encryptions)")
    suppress = DetectAndSuppressAES(key)
    result = DfaAttacker(
        suppress.encrypt,
        lambda pt, b, f: suppress.encrypt_with_fault(pt, b, f),
        seed=3).attack(max_faults_per_byte=4)
    print(f"   detect+suppress: key recovered = {result.success} "
          f"({suppress.detected_faults} faults suppressed)")
    infective = InfectiveAES(key, seed=4)
    result = DfaAttacker(
        infective.encrypt,
        lambda pt, b, f: infective.encrypt_with_fault(pt, b, f),
        seed=5).attack(max_faults_per_byte=4)
    print(f"   infective:       key recovered = {result.success} "
          f"({infective.infections} outputs infected)")


def dfx_response() -> None:
    print("== DFX: natural vs malicious fault discrimination ==")
    controller = DfxController()
    controller.provision_key(0xDEADBEEF)
    for event in natural_fault_stream(4, 200_000, ["sram", "alu", "noc"],
                                      seed=6):
        controller.handle_alarm(event)
    print(f"   after 4 background soft errors: state = "
          f"{controller.state.value}, key epoch = "
          f"{controller.key_epoch} (availability preserved)")
    for event in attack_fault_stream(6, 0, "aes_round10", seed=7):
        controller.handle_alarm(event)
    print(f"   after a targeted injection burst: state = "
          f"{controller.state.value}, key epoch = "
          f"{controller.key_epoch} (old keys revoked)")
    last = controller.log[-1]
    for reason in last.assessment.reasons:
        print(f"     evidence: {reason}")


def main() -> None:
    detection_design_space()
    dfa_matrix()
    dfx_response()


if __name__ == "__main__":
    main()
