#!/usr/bin/env python
"""Gate-level AES-128: build it, verify it, break it four ways.

The integration showcase: a 7,400-cell round-serial AES datapath is
constructed from the netlist substrate, verified against FIPS-197, and
then attacked through every channel the paper's Table I lists —
side-channel (CPA on register-switching power), fault injection
(register-level DFA), and test access (scan-chain readout) — with the
corresponding design-time evaluations alongside.

Run:  python examples/gate_level_aes.py     (takes ~30 s)
"""

import random

import numpy as np

from repro.crypto import (
    AES128,
    aes_datapath_netlist,
    encryption_schedule,
    run_aes_datapath,
)
from repro.dft import insert_scan, netlist_scan_attack
from repro.fia import DfaAttacker
from repro.netlist import ppa_report
from repro.sca import cpa_attack, sequential_leakage_traces
from repro.sca.power_model import HW8


def main() -> None:
    rng = random.Random(0)
    key = [rng.randrange(256) for _ in range(16)]
    print("== build & sign-off ==")
    datapath = aes_datapath_netlist()
    ppa = ppa_report(datapath)
    print(f"   {ppa.cell_count} cells, {ppa.flop_count} flops, "
          f"area {ppa.area:.0f}, depth {ppa.depth}")
    aes = AES128(key)
    pt = [rng.randrange(256) for _ in range(16)]
    ct = run_aes_datapath(datapath, pt, key)
    print(f"   netlist ciphertext matches software AES: "
          f"{ct == aes.encrypt(pt)}")

    print("== side channel: CPA on simulated register power ==")
    n = 300
    pts = [[rng.randrange(256) for _ in range(16)] for _ in range(n)]
    runs = [encryption_schedule(p, key)[:2] for p in pts]
    traces = sequential_leakage_traces(datapath, runs, noise_sigma=2.0,
                                       seed=1)
    byte_values = np.array([p[0] for p in pts])
    result = cpa_attack(
        traces, byte_values,
        hypothesis=lambda p, k: HW8[np.bitwise_xor(p, k)])
    print(f"   {n} traces: best guess {result.best_key:#04x}, true "
          f"{key[0]:#04x}, rank {result.rank_of(key[0])}")

    print("== fault injection: DFA via register faults ==")
    attacker = DfaAttacker(
        aes.encrypt,
        lambda p, b, f: run_aes_datapath(datapath, p, key,
                                         fault_round=10, fault_byte=b,
                                         fault_value=f),
        seed=2)
    dfa = attacker.attack(max_faults_per_byte=5)
    print(f"   full master key recovered: "
          f"{dfa.recovered_master_key == key} "
          f"({dfa.faults_used} faulty encryptions)")

    print("== test access: scan-chain readout ==")
    design = insert_scan(datapath)
    print(f"   scan chain stitched through {design.length} state flops")
    scan = netlist_scan_attack(key, seed=3)
    print(f"   key recovered through scan_out: {scan.success}")
    print("\nEvery Table I threat demonstrated against the same "
          "gate-level design — and every one is caught at design time "
          "by the corresponding evaluation in this framework.")


if __name__ == "__main__":
    main()
