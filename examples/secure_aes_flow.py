#!/usr/bin/env python
"""Security evaluation of an AES first-round datapath, stage by stage.

Walks one workload — the keyed S-box ``y = SBOX[pt ^ k]`` — through the
security-centric evaluations the paper assigns to each design stage:

* HLS: information-flow tracking, QIF, masking, register flushing;
* logic synthesis: WDDL hiding, leaking-gate localization;
* timing/power verification: CPA measurements-to-disclosure, glitches;
* testing: the scan attack and the secure-scan fix;

then runs the whole secure flow as ONE pass-manager pipeline and prints
its machine-readable provenance trace (which pass established which
property, what each pass re-checked and why).

Run:  python examples/secure_aes_flow.py
"""

import json
import random

from repro.crypto import sbox_with_key_netlist
from repro.dft import ScanChipModel, scan_attack
from repro.flow import (BufferSweepPass, MaskInsertionPass, PassManager,
                        PlacementPass, SecurityProperty, StaSignoffPass,
                        netlist_design, tvla_checker)
from repro.hls import (aes_first_round_dfg, dfg_output_leakage,
                       evaluate_hls_cpa, mask_sbox_kernel, taint_analysis)
from repro.netlist import encode_int, ppa_report
from repro.sca import (cpa_attack, dual_rail_stimulus, leakage_traces,
                       leaking_gate_report, locate_leaking_nets,
                       traces_to_disclosure, tvla, wddl_transform)

TRUE_KEY = 0x5A


def stage_hls() -> None:
    print("== HLS: information flow and masking ==")
    plain = aes_first_round_dfg()
    masked = mask_sbox_kernel()
    print(f"   taint: plain kernel tainted outputs = "
          f"{taint_analysis(plain).tainted_outputs}")
    print(f"   taint: masked kernel tainted outputs = "
          f"{taint_analysis(masked).tainted_outputs} "
          f"(healed: {taint_analysis(masked).healed_by_masking})")
    print(f"   QIF of plain output w.r.t. key: "
          f"{dfg_output_leakage(plain, 'ct', 'key', 'pt'):.0f} bits")
    plain_cpa = evaluate_hls_cpa(plain, TRUE_KEY, n_traces=1200,
                                 noise_sigma=0.8, seed=1)
    masked_cpa = evaluate_hls_cpa(masked, TRUE_KEY, n_traces=1200,
                                  noise_sigma=0.8, seed=2)
    print(f"   HLS-level CPA rank of true key: plain "
          f"{plain_cpa.cpa_rank_of_true_key}, masked "
          f"{masked_cpa.cpa_rank_of_true_key}")


def build_stimuli(fixed_pt, n, seed):
    rng = random.Random(seed)
    stimuli = []
    for _ in range(n):
        pt = fixed_pt if fixed_pt is not None else rng.randrange(256)
        stim = encode_int(pt, [f"p{i}" for i in range(8)])
        stim.update(encode_int(TRUE_KEY, [f"k{i}" for i in range(8)]))
        stimuli.append(stim)
    return stimuli


def stage_logic_synthesis() -> None:
    print("== logic synthesis: TVLA, localization, WDDL ==")
    target = sbox_with_key_netlist()
    fixed = build_stimuli(0x3C, 1500, 1)
    rand = build_stimuli(None, 1500, 2)
    plain = tvla(leakage_traces(target, fixed, noise_sigma=1.0, seed=3),
                 leakage_traces(target, rand, noise_sigma=1.0, seed=4))
    print(f"   plain keyed S-box: TVLA max|t| = {plain.max_abs_t:.1f} "
          f"(leaks: {plain.leaks})")
    leaks = locate_leaking_nets(target, fixed[:1000], rand[:1000])
    print("   leaking-gate localization (top 3):")
    for line in leaking_gate_report(leaks, 3).splitlines():
        print("     " + line)
    dual, _ = wddl_transform(target)
    dual_result = tvla(
        leakage_traces(dual, [dual_rail_stimulus(s) for s in fixed],
                       noise_sigma=1.0, seed=5),
        leakage_traces(dual, [dual_rail_stimulus(s) for s in rand],
                       noise_sigma=1.0, seed=6))
    cost = ppa_report(dual).area / ppa_report(target).area
    print(f"   WDDL: TVLA max|t| = {dual_result.max_abs_t:.1f} "
          f"(leaks: {dual_result.leaks}) at {cost:.1f}x area")


def stage_power_verification() -> None:
    print("== timing/power verification: CPA measurements-to-disclosure ==")
    target = sbox_with_key_netlist()
    rng = random.Random(7)
    pts = [rng.randrange(256) for _ in range(1200)]
    stims = []
    for pt in pts:
        s = encode_int(pt, [f"p{i}" for i in range(8)])
        s.update(encode_int(TRUE_KEY, [f"k{i}" for i in range(8)]))
        stims.append(s)
    for sigma in (1.0, 4.0):
        traces = leakage_traces(target, stims, noise_sigma=sigma, seed=8)
        result = cpa_attack(traces, pts)
        mtd = traces_to_disclosure(traces, pts, TRUE_KEY)
        print(f"   noise sigma={sigma}: CPA best key = "
              f"{result.best_key:#04x} (true {TRUE_KEY:#04x}), "
              f"measurements-to-disclosure = {mtd}")


def stage_testing() -> None:
    print("== testing: scan attack vs secure scan ==")
    key = [random.Random(9).randrange(256) for _ in range(16)]
    insecure = scan_attack(ScanChipModel(key, secure=False))
    secure = scan_attack(ScanChipModel(key, secure=True))
    print(f"   plain scan chain: key recovered = {insecure.success}")
    print(f"   secure scan:      key recovered = {secure.success}")


def stage_pipeline() -> None:
    print("== the secure flow as a pass pipeline (FlowTrace provenance) ==")
    design = netlist_design(sbox_with_key_netlist(), name="secure-aes")
    design.tvla_fixed = lambda rng: dict(
        encode_int(0x3C, [f"p{i}" for i in range(8)]),
        **encode_int(TRUE_KEY, [f"k{i}" for i in range(8)]))
    design.tvla_random = lambda rng: dict(
        encode_int(rng.randrange(256), [f"p{i}" for i in range(8)]),
        **encode_int(TRUE_KEY, [f"k{i}" for i in range(8)]))

    manager = PassManager(
        checkers={SecurityProperty.TVLA_BOUND: tvla_checker(n_traces=500)},
        seed=0)
    outcome = manager.run(
        design,
        [MaskInsertionPass(),            # establishes masking + TVLA bound
         BufferSweepPass(),              # preserves both -> no re-check
         PlacementPass(iterations=400),  # preserves both -> no re-check
         StaSignoffPass()],
        goals=[SecurityProperty.TVLA_BOUND])
    for line in outcome.trace.render().splitlines():
        print("   " + line)
    blob = json.dumps(outcome.trace.to_dict())
    print(f"   machine-readable trace: {len(blob)} bytes of JSON, "
          f"all checks passed = {outcome.all_passed}")


def main() -> None:
    stage_hls()
    stage_logic_synthesis()
    stage_power_verification()
    stage_testing()
    stage_pipeline()


if __name__ == "__main__":
    main()
