#!/usr/bin/env python
"""Secure composition audit — the paper's Sec. IV made executable.

Starting from a first-order masked AND gadget, this script composes
countermeasure stacks and lets the composition engine re-verify every
threat after each step:

* masking + duplication-based fault detection  -> composes safely;
* masking + parity-based fault detection       -> the parity checker
  physically computes the XOR of the shares (= the unmasked secret),
  TVLA fails, and the engine flags the cross-effect (ref [61]);
* masking + security-unaware timing optimization -> the Fig. 2 break.

Run:  python examples/composition_audit.py
"""

from repro.core import (
    CompositionEngine,
    DetectionConstraint,
    LeakageConstraint,
    MaskingConstraint,
    SecureFlow,
    compile_and_check,
    duplication_countermeasure,
    masked_and_design,
    parity_countermeasure,
    register_from_composition,
    timing_reassociation_step,
    tvla_requirement,
    no_leaky_net_requirement,
    wddl_countermeasure,
)


def main() -> None:
    engine = CompositionEngine(n_traces=4000, noise_sigma=0.25, seed=1)

    stacks = {
        "masking + duplication": [duplication_countermeasure()],
        "masking + parity": [parity_countermeasure()],
        "masking + timing re-association": [timing_reassociation_step()],
        "masking + WDDL": [wddl_countermeasure()],
    }
    for name, stack in stacks.items():
        print(f"\n##### {name} #####")
        _, report = engine.compose(masked_and_design(), stack)
        print(report.render())
        verdict = ("COMPOSITION UNSAFE" if report.harmful_effects
                   else "composition safe")
        print(f">>> {verdict}")

    print("\n##### the same check inside the secure flow #####")
    flow = SecureFlow(
        [tvla_requirement(n_traces=3000),
         no_leaky_net_requirement(n_traces=2500)],
        transforms=[parity_countermeasure()],
        placement_iterations=1000)
    result = flow.run(masked_and_design())
    print(result.report.render())
    print(f"\nflow verdict: "
          f"{'signoff BLOCKED' if result.failures else 'signoff clean'}")

    print("\n##### constraint compilation down to the bare metal #####")
    constraints = [
        LeakageConstraint(n_traces=2500),
        MaskingConstraint(n_traces=2000),
        DetectionConstraint(),
    ]
    for name, countermeasure in (
            ("duplication", duplication_countermeasure()),
            ("parity", parity_countermeasure())):
        design = countermeasure.apply(masked_and_design())
        print(f"\n--- constraints vs masking + {name} ---")
        print(compile_and_check(design, constraints).render())

    print("\n##### risk register hand-off #####")
    engine = CompositionEngine(n_traces=3000, seed=9)
    _, parity_report = engine.compose(masked_and_design(),
                                      [parity_countermeasure()])
    register = register_from_composition("masked-and + parity",
                                         parity_report)
    print(register.render())


if __name__ == "__main__":
    main()
