#!/usr/bin/env python
"""IP-protection audit: red team vs blue team over one design.

Locks, camouflages, and split-manufactures the AES S-box, then runs the
corresponding attacks (SAT attack, de-camouflaging, proximity attack)
exactly as the paper's "verification mimics the attacker" methodology
prescribes — and reports which protections hold at what cost.

Run:  python examples/ip_protection_audit.py
"""

import time

from repro.crypto import aes_sbox_netlist
from repro.formal import check_equivalence
from repro.ip import (
    apply_key,
    attack_locked_circuit,
    build_feol_view,
    camouflage,
    decamouflage_to_locked,
    evaluate_arbiter_population,
    lift_critical_nets,
    lock_xor,
    model_attack_arbiter,
    ArbiterPuf,
    proximity_attack,
    reconstruction_error_rate,
    sfll_hd_lock,
    wrong_key_error_rate,
)
from repro.ip.split import high_fanout_nets
from repro.netlist import ppa_report, random_circuit, ripple_carry_adder
from repro.physical import annealing_placement
from repro.synth import to_nand_inv


def audit_locking() -> None:
    print("== logic locking audit (EPIC vs SFLL) ==")
    sbox = aes_sbox_netlist()
    base_area = ppa_report(sbox).area
    locked = lock_xor(sbox, 16, seed=1)
    assert check_equivalence(apply_key(locked), sbox).equivalent
    error = wrong_key_error_rate(locked, trials=16)
    began = time.perf_counter()
    attack = attack_locked_circuit(locked)
    elapsed = time.perf_counter() - began
    area = ppa_report(locked.netlist).area
    print(f"   EPIC-16: wrong-key error {error:.2f}, area "
          f"{area / base_area:.2f}x — SAT attack broke it in "
          f"{attack.iterations} DIPs / {elapsed:.1f}s")

    small = random_circuit(6, 60, 3, seed=2)
    sfll = sfll_hd_lock(small, small.outputs[0], h=0,
                        n_protect_bits=6, seed=2)
    epic_small = lock_xor(small, 6, seed=2)
    epic_iters = attack_locked_circuit(epic_small).iterations
    sfll_result = attack_locked_circuit(sfll.locked, max_iterations=120)
    sfll_iters = sfll_result.iterations
    print(f"   at 6 key bits: EPIC falls in {epic_iters} DIPs; "
          f"SFLL-HD(0) needs {sfll_iters}"
          f"{'+ (budget hit)' if sfll_result.gave_up else ''} — "
          f"provable resilience, but low output corruption")


def audit_camouflage() -> None:
    print("== camouflaging audit ==")
    base = random_circuit(8, 70, 4, seed=3)
    to_nand_inv(base)
    camo = camouflage(base, 8, seed=3)
    locked = decamouflage_to_locked(camo)
    attack = attack_locked_circuit(locked)
    print(f"   {camo.n_cells} camouflaged cells "
          f"({3 ** camo.n_cells} assignments) resolved by the SAT "
          f"attack in {attack.iterations} DIPs")


def audit_split_manufacturing() -> None:
    print("== split-manufacturing audit ==")
    design = ripple_carry_adder(8)
    placement = annealing_placement(design, iterations=6000,
                                    seed=4).placement
    naive_view = build_feol_view(design, placement, split_layer=1)
    naive = proximity_attack(naive_view)
    error_naive = reconstruction_error_rate(naive_view, naive)
    lifted = lift_critical_nets(design, high_fanout_nets(design, 25))
    lifted_view = build_feol_view(design, placement, split_layer=1,
                                  lifted=lifted)
    defended = proximity_attack(lifted_view)
    error_lifted = reconstruction_error_rate(lifted_view, defended)
    print(f"   classical flow:   proximity CCR {naive.ccr:.2f}, "
          f"reconstruction error {error_naive:.2f}")
    print(f"   with wire lifting: proximity CCR {defended.ccr:.2f}, "
          f"reconstruction error {error_lifted:.2f}")


def audit_pufs() -> None:
    print("== PUF audit (counterfeiting defense) ==")
    metrics = evaluate_arbiter_population(n_chips=12, n_challenges=300,
                                          n_repeats=5)
    print(f"   arbiter PUF population: uniformity "
          f"{metrics.uniformity:.2f}, reliability "
          f"{metrics.reliability:.3f}, uniqueness "
          f"{metrics.uniqueness:.2f}")
    accuracy = model_attack_arbiter(ArbiterPuf(64, seed=5), n_train=4000)
    print(f"   but: ML modeling attack clones it at "
          f"{accuracy:.1%} accuracy — flag for the threat model")


def main() -> None:
    audit_locking()
    audit_camouflage()
    audit_split_manufacturing()
    audit_pufs()


if __name__ == "__main__":
    main()
