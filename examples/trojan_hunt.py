#!/usr/bin/env python
"""Trojan hunt: insert a stealthy Trojan, then try every detector.

Covers the Trojan column of the paper's Table II end to end:
rare-trigger insertion, MERO-style test generation, runtime monitors
with a formal no-silent-payload proof, path-delay fingerprinting, IDDQ
per-pad screening, the RO sensor network, and BISA space denial.

Run:  python examples/trojan_hunt.py
"""

from repro.formal import CircuitEncoder
from repro.netlist import random_circuit
from repro.physical import annealing_placement
from repro.trojan import (
    apply_test_set,
    bisa_fill,
    build_fingerprint,
    build_ro_network,
    calibrate_iddq,
    generate_mero_tests,
    insert_monitors,
    insert_rare_trigger_trojan,
    insertion_feasibility,
    pair_trigger_coverage,
    random_test_set,
    ro_detection,
    screen_iddq,
    screen_population,
)


def main() -> None:
    host = random_circuit(12, 150, 6, seed=8)
    trojan = insert_rare_trigger_trojan(host, trigger_width=3, seed=1)
    print(f"inserted Trojan: trigger on {trojan.trigger_inputs}, "
          f"payload on {trojan.victim_net}, "
          f"activation probability ~{trojan.trigger_probability:.1e}")

    print("\n== functional testing ==")
    random_tests = random_test_set(host, 100, seed=2)
    outcome = apply_test_set(trojan, random_tests)
    print(f"   100 random vectors trigger it: {outcome.triggered}")
    mero = generate_mero_tests(host, n_detect=10, n_initial=250, seed=3)
    cov_mero = pair_trigger_coverage(host, mero.vectors)
    cov_rand = pair_trigger_coverage(
        host, random_test_set(host, len(mero.vectors), seed=4))
    print(f"   MERO: {len(mero.vectors)} vectors, rare-pair coverage "
          f"{cov_mero:.2f} vs {cov_rand:.2f} random at equal budget")

    print("\n== runtime monitors (TPAD) + formal proof ==")
    monitored = insert_monitors(host)
    compromised = insert_rare_trigger_trojan(monitored.netlist,
                                             trigger_width=2, seed=5)
    enc = CircuitEncoder()
    clean_vars = enc.encode(host)
    dirty_vars = enc.encode(compromised.netlist,
                            bind={n: clean_vars[n] for n in host.inputs})
    diffs = [enc.xor_of(clean_vars[o], dirty_vars[o])
             for o in host.outputs]
    enc.assert_equal(enc.or_of(diffs), 1)
    enc.assert_equal(dirty_vars["monitor_alarm"], 0)
    silent_possible = enc.solver.solve()
    print(f"   SAT proof: silent payload possible = {silent_possible} "
          f"(monitors cost {monitored.overhead_cells} cells)")

    print("\n== post-silicon parametric screens ==")
    fingerprint = build_fingerprint(host, n_chips=30, seed=6)
    fpr, detection = screen_population(fingerprint, host, trojan.netlist,
                                       n_chips=15)
    print(f"   delay fingerprint: detection {detection:.0%}, "
          f"false positives {fpr:.0%}")

    placement = annealing_placement(host, iterations=3000, seed=7).placement
    compromised_placement = placement.copy()
    occupied = set(compromised_placement.positions.values())
    free = sorted((x, y) for x in range(compromised_placement.width)
                  for y in range(compromised_placement.height)
                  if (x, y) not in occupied)
    trojan_cells = [g for g in trojan.netlist.gates
                    if g.startswith("tj_")]
    for cell, site in zip(trojan_cells, free):
        compromised_placement.positions[cell] = site

    detector = calibrate_iddq(host, placement, n_chips=25)
    flagged = screen_iddq(detector, trojan.netlist,
                          compromised_placement, n_chips=10)
    print(f"   IDDQ per-pad screen: {flagged:.0%} of Trojaned chips "
          f"flagged")

    network = build_ro_network(placement)
    detected, max_z = ro_detection(network, host, placement,
                                   trojan.netlist, compromised_placement,
                                   trojan_cells)
    print(f"   RO sensor network: detected = {detected} "
          f"(max |z| = {max_z:.1f})")

    print("\n== prevention: BISA fill ==")
    fill = bisa_fill(placement, fill_fraction=1.0)
    feasible = insertion_feasibility(placement, fill,
                                     trojan_sites_needed=3)
    print(f"   after 100% fill: free sites "
          f"{fill.free_sites_before} -> {fill.free_sites_after}; "
          f"fabrication-time insertion feasible = {feasible}")


if __name__ == "__main__":
    main()
