#!/usr/bin/env python
"""Quickstart: the paper's story in sixty lines.

1. Build a masked (private-circuit) AND gadget — TVLA passes.
2. Let a classical, security-unaware optimizer re-associate its XOR
   trees for timing — function preserved, TVLA now fails (Fig. 2).
3. Run the same design through the secure-composition engine, which
   catches the break automatically (Sec. IV).

Run:  python examples/quickstart.py
"""

import random

from repro.core import CompositionEngine, masked_and_design, \
    timing_reassociation_step
from repro.sca import (isw_and_netlist, leakage_traces,
                       random_share_stimulus, tvla)
from repro.synth import reassociate_for_timing


def collect_traces(netlist, fixed_secrets, n_traces, seed):
    """Simulated power traces for the fixed or random TVLA class."""
    rng = random.Random(seed)
    stimuli = []
    for _ in range(n_traces):
        if fixed_secrets:
            a, b = 1, 1
        else:
            a, b = rng.randint(0, 1), rng.randint(0, 1)
        stimuli.append(random_share_stimulus(a, b, 3, rng))
    return leakage_traces(netlist, stimuli, noise_sigma=0.25, seed=seed)


def main() -> None:
    print("== 1. security-aware masked AND gadget ==")
    gadget = isw_and_netlist()
    result = tvla(collect_traces(gadget, True, 4000, 1),
                  collect_traces(gadget, False, 4000, 2))
    print(f"   TVLA max|t| = {result.max_abs_t:.2f}  "
          f"(threshold {result.threshold})  leaks: {result.leaks}")

    print("== 2. after security-unaware timing optimization (Fig. 2) ==")
    optimized = gadget.copy()
    late_rng = {f"r_{i}_{j}": 1e5 for i in range(3)
                for j in range(i + 1, 3)}
    rebuilt = reassociate_for_timing(optimized, input_arrivals=late_rng)
    result2 = tvla(collect_traces(optimized, True, 4000, 3),
                   collect_traces(optimized, False, 4000, 4))
    print(f"   {rebuilt} XOR trees re-associated; function unchanged")
    print(f"   TVLA max|t| = {result2.max_abs_t:.2f}  "
          f"leaks: {result2.leaks}   <-- masking destroyed")

    print("== 3. the secure-composition engine catches it ==")
    engine = CompositionEngine(n_traces=4000, seed=5)
    _, report = engine.compose(masked_and_design(),
                               [timing_reassociation_step()])
    for effect in report.harmful_effects:
        print(f"   FLAGGED: {effect.countermeasure} degraded "
              f"{effect.metric}: {effect.before:.2f} -> "
              f"{effect.after:.2f} ({effect.note})")


if __name__ == "__main__":
    main()
