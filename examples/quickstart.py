#!/usr/bin/env python
"""Quickstart: the paper's story in sixty lines.

1. Build a masked (private-circuit) AND gadget — TVLA passes.
2. Let a classical, security-unaware optimizer re-associate its XOR
   trees for timing — function preserved, TVLA now fails (Fig. 2).
3. Run the same pipeline through the pass manager, where every
   transform declares what it preserves or invalidates — the break is
   caught by flow infrastructure, and passes that declare
   ``preserves: masking`` don't even trigger a re-measurement.

Run:  python examples/quickstart.py
"""

import random

from repro.flow import (BufferSweepPass, PassManager, ReassociationPass,
                        SecurityProperty, default_checkers)
from repro.core import masked_and_design
from repro.sca import (isw_and_netlist, leakage_traces,
                       random_share_stimulus, tvla)
from repro.synth import reassociate_for_timing


def collect_traces(netlist, fixed_secrets, n_traces, seed):
    """Simulated power traces for the fixed or random TVLA class."""
    rng = random.Random(seed)
    stimuli = []
    for _ in range(n_traces):
        if fixed_secrets:
            a, b = 1, 1
        else:
            a, b = rng.randint(0, 1), rng.randint(0, 1)
        stimuli.append(random_share_stimulus(a, b, 3, rng))
    return leakage_traces(netlist, stimuli, noise_sigma=0.25, seed=seed)


def main() -> None:
    print("== 1. security-aware masked AND gadget ==")
    gadget = isw_and_netlist()
    result = tvla(collect_traces(gadget, True, 4000, 1),
                  collect_traces(gadget, False, 4000, 2))
    print(f"   TVLA max|t| = {result.max_abs_t:.2f}  "
          f"(threshold {result.threshold})  leaks: {result.leaks}")

    print("== 2. after security-unaware timing optimization (Fig. 2) ==")
    optimized = gadget.copy()
    late_rng = {f"r_{i}_{j}": 1e5 for i in range(3)
                for j in range(i + 1, 3)}
    rebuilt = reassociate_for_timing(optimized, input_arrivals=late_rng)
    result2 = tvla(collect_traces(optimized, True, 4000, 3),
                   collect_traces(optimized, False, 4000, 4))
    print(f"   {rebuilt} XOR trees re-associated; function unchanged")
    print(f"   TVLA max|t| = {result2.max_abs_t:.2f}  "
          f"leaks: {result2.leaks}   <-- masking destroyed")

    print("== 3. the pass manager catches it (declared effects) ==")
    manager = PassManager(checkers=default_checkers(n_traces=3000), seed=5)
    outcome = manager.run(
        masked_and_design(),
        [BufferSweepPass(),                      # preserves: masking
         ReassociationPass(rng_prefix="r_")],    # invalidates: masking
        goals=[SecurityProperty.TVLA_BOUND, SecurityProperty.MASKING],
        assume=[SecurityProperty.TVLA_BOUND, SecurityProperty.MASKING])
    print("   bufsweep re-checked:", outcome.trace.rechecked_properties(
        "bufsweep") or "nothing (declares preserves)")
    print("   reassoc-timing re-checked:",
          outcome.trace.rechecked_properties("reassoc-timing"))
    for line in outcome.failures:
        print(f"   FLAGGED: {line}")


if __name__ == "__main__":
    main()
