"""F2 — Fig. 2: classical synthesis destroys private-circuit security.

Regenerates the paper's motivational example quantitatively:

* the ISW-masked AND gadget, built in the secure evaluation order,
  passes first-order TVLA;
* the same gadget after a timing-driven XOR re-association (randomness
  arriving late, exactly the paper's scenario) computes an unmasked sum
  of share products on a real wire and fails TVLA decisively;
* per-net localization names the offending wire;
* gadget-level exhaustive probing analysis confirms the same effect
  independent of the trace statistics.

Expected shape (paper claim): secure |t| < 4.5 << broken |t|.
"""

import random

import pytest

from repro.sca import (
    isw_and,
    isw_and_netlist,
    leakage_traces,
    locate_leaking_nets,
    probing_security_first_order,
    random_share_stimulus,
    tvla,
)
from repro.synth import reassociate_for_timing

N_TRACES = 5000
NOISE = 0.25


def _stimuli(n, fixed, seed):
    rng = random.Random(seed)
    out = []
    for _ in range(n):
        if fixed:
            a, b = 1, 1
        else:
            a, b = rng.randint(0, 1), rng.randint(0, 1)
        out.append(random_share_stimulus(a, b, 3, rng))
    return out


def _tvla_of(netlist, seed):
    fixed = leakage_traces(netlist, _stimuli(N_TRACES, True, seed),
                           noise_sigma=NOISE, seed=seed)
    rand = leakage_traces(netlist, _stimuli(N_TRACES, False, seed + 1),
                          noise_sigma=NOISE, seed=seed + 1)
    return tvla(fixed, rand)


def fig2_experiment():
    secure = isw_and_netlist()
    secure_result = _tvla_of(secure, 1)

    broken = isw_and_netlist()
    late = {f"r_{i}_{j}": 1e5 for i in range(3) for j in range(i + 1, 3)}
    trees = reassociate_for_timing(broken, input_arrivals=late)

    broken_result = _tvla_of(broken, 3)
    leaks = locate_leaking_nets(
        broken, _stimuli(3000, True, 5), _stimuli(3000, False, 6))

    gadget_secure, _ = probing_security_first_order(
        lambda a, b, r: isw_and(a, b, r, "secure"))
    gadget_broken, leaky_idx = probing_security_first_order(
        lambda a, b, r: isw_and(a, b, r, "reassociated"))

    return {
        "secure_t": secure_result.max_abs_t,
        "broken_t": broken_result.max_abs_t,
        "trees_rebuilt": trees,
        "worst_net": leaks[0].net,
        "worst_net_t": abs(leaks[0].t_statistic),
        "gadget_secure": gadget_secure,
        "gadget_broken": gadget_broken,
        "first_leaky_intermediate": leaky_idx,
    }


def whole_circuit_experiment():
    """Fig. 2 at whole-circuit scale: auto-mask the PRESENT S-box,
    optimize it, watch the guarantee die."""
    from repro.crypto import present_sbox_netlist
    from repro.sca import mask_netlist

    masked = mask_netlist(present_sbox_netlist())

    def classes(netlist, n, fixed, seed):
        rng = random.Random(seed)
        stims = []
        for _ in range(n):
            x = 0xB if fixed else rng.randrange(16)
            plain = {f"x{i}": (x >> i) & 1 for i in range(4)}
            stims.append(masked.stimulus(plain, rng))
        return stims

    def t_of(netlist, seed):
        fixed = leakage_traces(netlist, classes(netlist, 4000, True, seed),
                               noise_sigma=0.3, seed=seed)
        rand = leakage_traces(netlist,
                              classes(netlist, 4000, False, seed + 1),
                              noise_sigma=0.3, seed=seed + 1)
        return tvla(fixed, rand).max_abs_t

    secure_t = t_of(masked.netlist, 41)
    broken = masked.netlist.copy()
    late = {r: 1e5 for r in masked.random_inputs}
    rebuilt = reassociate_for_timing(broken, input_arrivals=late)
    broken_t = t_of(broken, 43)
    return {
        "cells": masked.netlist.num_cells(),
        "randomness": masked.randomness_bits,
        "secure_t": secure_t,
        "broken_t": broken_t,
        "trees": rebuilt,
    }


def test_fig2_whole_circuit(benchmark):
    result = benchmark.pedantic(whole_circuit_experiment, rounds=3,
                                iterations=1)
    print("\n=== Fig. 2 at circuit scale: auto-masked PRESENT S-box ===")
    print(f"masking synthesis: {result['cells']} cells, "
          f"{result['randomness']} fresh random bits")
    print(f"as synthesized:           TVLA max|t| = "
          f"{result['secure_t']:.2f} (PASS)")
    print(f"after timing optimization ({result['trees']} XOR trees): "
          f"TVLA max|t| = {result['broken_t']:.2f} (FAIL)")
    assert result["secure_t"] < 4.5
    assert result["broken_t"] > 4.5


def test_fig2(benchmark):
    result = benchmark.pedantic(fig2_experiment, rounds=5, iterations=1)
    print("\n=== Fig. 2: insecure nature of classical EDA tools ===")
    print(f"secure evaluation order:       TVLA max|t| = "
          f"{result['secure_t']:6.2f}  (PASS, < 4.5)")
    print(f"after timing re-association:   TVLA max|t| = "
          f"{result['broken_t']:6.2f}  (FAIL)  "
          f"[{result['trees_rebuilt']} XOR trees rebuilt]")
    print(f"leakage localized to net {result['worst_net']!r} "
          f"(|t| = {result['worst_net_t']:.1f}) — the unmasked "
          f"sum of share products")
    print(f"exhaustive probing analysis: secure order 1st-order secure = "
          f"{result['gadget_secure']}; re-associated = "
          f"{result['gadget_broken']} (first leaky intermediate at "
          f"index {result['first_leaky_intermediate']})")
    assert result["secure_t"] < 4.5
    assert result["broken_t"] > 4.5
    assert result["broken_t"] > 3 * result["secure_t"]
    assert result["gadget_secure"] and not result["gadget_broken"]
