"""Ablations of the design choices DESIGN.md calls out.

A1 — Fig. 2 mechanism: is it really *timing pressure on late
     randomness* that breaks the gadget, or does any re-association?
     Compare re-association under uniform arrivals vs late-RNG
     arrivals, and balanced rebuilding as a third arm.
A2 — evaluation budget: the composition engine's verdict depends on
     its trace budget (paper Sec. II-C: threat-model evaluation is
     limited by computational cost).  Sweep the budget and find the
     cheapest one that still flags the parity break.
A3 — structural vs oracle-guided attacks on locking: the structural
     read-off needs no oracle at all and survives resynthesis (SAIL),
     while the SAT attack needs oracle access but defeats *any*
     structure.
A4 — distinguisher choice: CPA vs MIA trace efficiency on the same
     leaky target (linear leakage favours CPA; MIA needs no model
     linearity).
"""

import random

import pytest

from repro.core import CompositionEngine, masked_and_design, \
    parity_countermeasure
from repro.crypto import sbox_with_key_netlist
from repro.ip import (
    attack_locked_circuit,
    lock_xor,
    resynthesis_resistance,
)
from repro.netlist import encode_int, random_circuit
from repro.sca import (
    cpa_attack,
    isw_and_netlist,
    leakage_traces,
    mia_attack,
    random_share_stimulus,
    tvla,
)
from repro.synth import balance_trees, reassociate_for_timing


def _gadget_tvla(netlist, seed, n=4000):
    rng_f, rng_r = random.Random(seed), random.Random(seed + 1)
    fixed = [random_share_stimulus(1, 1, 3, rng_f) for _ in range(n)]
    rand = [
        random_share_stimulus(rng_r.randint(0, 1), rng_r.randint(0, 1),
                              3, rng_r)
        for _ in range(n)
    ]
    return tvla(
        leakage_traces(netlist, fixed, noise_sigma=0.25, seed=seed),
        leakage_traces(netlist, rand, noise_sigma=0.25, seed=seed + 1),
    ).max_abs_t


def run_reassociation_ablation():
    arms = {}
    base = isw_and_netlist()
    arms["no-optimization"] = _gadget_tvla(base, 1)

    uniform = isw_and_netlist()
    reassociate_for_timing(uniform)            # all arrivals equal
    arms["reassoc-uniform-arrivals"] = _gadget_tvla(uniform, 11)

    late = isw_and_netlist()
    late_arrivals = {f"r_{i}_{j}": 1e5
                     for i in range(3) for j in range(i + 1, 3)}
    reassociate_for_timing(late, input_arrivals=late_arrivals)
    arms["reassoc-late-randomness"] = _gadget_tvla(late, 21)

    balanced = isw_and_netlist()
    balance_trees(balanced)
    arms["balanced-rebuild"] = _gadget_tvla(balanced, 31)
    return arms


def test_a1_fig2_mechanism(benchmark):
    arms = benchmark.pedantic(run_reassociation_ablation, rounds=1,
                              iterations=1)
    print("\n=== A1: what exactly breaks the masking? ===")
    for name, t in arms.items():
        verdict = "FAIL" if t > 4.5 else "pass"
        print(f"   {name:<28} TVLA max|t| = {t:6.2f}  {verdict}")
    assert arms["no-optimization"] < 4.5
    # the late-randomness timing scenario is the reliable killer
    assert arms["reassoc-late-randomness"] > 4.5
    # and it must be markedly worse than the baseline
    assert (arms["reassoc-late-randomness"]
            > 3 * arms["no-optimization"])


def run_budget_ablation():
    rows = {}
    for budget in (250, 1000, 4000):
        engine = CompositionEngine(n_traces=budget, noise_sigma=0.25,
                                   seed=1)
        _, report = engine.compose(masked_and_design(),
                                   [parity_countermeasure()])
        flagged = any(e.metric == "tvla_max_t" and e.harmful
                      for e in report.cross_effects)
        rows[budget] = (report.steps[-1][1].tvla_max_t, flagged)
    return rows


def test_a2_evaluation_budget(benchmark):
    rows = benchmark.pedantic(run_budget_ablation, rounds=1,
                              iterations=1)
    print("\n=== A2: composition verdict vs evaluation budget ===")
    for budget, (t, flagged) in rows.items():
        print(f"   {budget:>5} traces: parity-step max|t| = {t:6.1f}, "
              f"flagged = {flagged}")
    # the t statistic grows with budget (sqrt-N), so verdicts firm up
    ts = [t for t, _ in rows.values()]
    assert ts[-1] > ts[0]
    # at the full budget, the break is always caught
    assert rows[4000][1]


def run_attack_comparison():
    base = random_circuit(8, 80, 4, seed=9)
    locked = lock_xor(base, 12, seed=9)
    plain_acc, resynth_acc = resynthesis_resistance(locked)
    sat = attack_locked_circuit(locked)
    return {
        "structural_plain": plain_acc,
        "structural_resynth": resynth_acc,
        "sat_dips": sat.iterations,
        "sat_success": sat.success,
    }


def test_a3_structural_vs_sat(benchmark):
    result = benchmark.pedantic(run_attack_comparison, rounds=1,
                                iterations=1)
    print("\n=== A3: structural (no oracle) vs SAT (oracle) attacks ===")
    print(f"   structural read-off accuracy: "
          f"{result['structural_plain']:.0%} on the shipped netlist, "
          f"{result['structural_resynth']:.0%} after NAND resynthesis")
    print(f"   oracle-guided SAT attack: success = "
          f"{result['sat_success']} in {result['sat_dips']} DIPs")
    assert result["structural_plain"] == 1.0
    assert result["structural_resynth"] >= 0.7
    assert result["sat_success"]


def run_distinguisher_comparison():
    net = sbox_with_key_netlist()
    rng = random.Random(3)
    true_key = 0xB2
    pts = [rng.randrange(256) for _ in range(1500)]
    stims = []
    for pt in pts:
        s = encode_int(pt, [f"p{i}" for i in range(8)])
        s.update(encode_int(true_key, [f"k{i}" for i in range(8)]))
        stims.append(s)
    traces = leakage_traces(net, stims, noise_sigma=2.0, seed=4)
    rows = {}
    for n in (400, 800, 1500):
        cpa_rank = cpa_attack(traces[:n], pts[:n]).rank_of(true_key)
        mia_rank = mia_attack(traces[:n], pts[:n]).rank_of(true_key)
        rows[n] = (cpa_rank, mia_rank)
    return rows


def test_a4_cpa_vs_mia(benchmark):
    rows = benchmark.pedantic(run_distinguisher_comparison, rounds=1,
                              iterations=1)
    print("\n=== A4: CPA vs MIA rank of the true key vs trace count ===")
    print(f"   {'traces':>7} {'CPA rank':>9} {'MIA rank':>9}")
    for n, (cpa_rank, mia_rank) in rows.items():
        print(f"   {n:>7} {cpa_rank:>9} {mia_rank:>9}")
    # both distinguishers converge to rank 0 with enough traces
    assert rows[1500][0] == 0
    assert rows[1500][1] <= 3
    # CPA (matched to the linear HW leakage) is at least as efficient
    assert rows[400][0] <= rows[400][1] + 5
