"""F1 — Fig. 1: the classical EDA flow, security-blind by construction.

Runs the full classical pipeline (logic synthesis -> techmap ->
placement -> STA/power -> ATPG) on three workloads and prints per-stage
PPA, demonstrating (a) the flow works as a flow and (b) it performs
exactly zero security checks — the gap the paper's Fig. 1 caption
points at.  As the contrast, the secure flow runs the same masked
design and reports its security verdicts.
"""

import pytest

from repro.core import (
    ClassicalFlow,
    SecureFlow,
    masked_and_design,
    tvla_requirement,
)
from repro.crypto import aes_sbox_netlist
from repro.netlist import array_multiplier, ripple_carry_adder


WORKLOADS = {
    "rca8": lambda: ripple_carry_adder(8),
    "mult4": lambda: array_multiplier(4),
    "aes_sbox": lambda: aes_sbox_netlist(),
}


def run_classical():
    flow = ClassicalFlow(placement_iterations=4000)
    return {name: flow.run(factory()) for name, factory in
            WORKLOADS.items()}


def test_fig1_classical_flow(benchmark):
    results = benchmark.pedantic(run_classical, rounds=1, iterations=1)
    print("\n=== Fig. 1: classical EDA flow (no security considered) ===")
    print(f"{'design':<10} {'cells':>6} {'area':>8} {'delay ps':>9} "
          f"{'hpwl':>7} {'stuck-at cov':>12} {'security checks':>16}")
    for name, result in results.items():
        ppa = result.report.final_ppa
        hpwl = next(r.metrics.get("hpwl", 0.0)
                    for r in result.report.records
                    if "hpwl" in r.metrics)
        coverage = next(
            (r.metrics["stuck_at_coverage"]
             for r in result.report.records
             if "stuck_at_coverage" in r.metrics), float("nan"))
        checks = result.report.total_security_checks
        print(f"{name:<10} {ppa.cell_count:>6} {ppa.area:>8.1f} "
              f"{ppa.delay:>9.1f} {hpwl:>7.0f} {coverage:>12.2f} "
              f"{checks:>16}")
        assert checks == 0  # the defining property of Fig. 1
    print("\n(per-stage trace for rca8)")
    print(results["rca8"].report.render())


def test_fig1_secure_flow_contrast(benchmark):
    def run():
        flow = SecureFlow([tvla_requirement(n_traces=2500)],
                          placement_iterations=1500)
        return flow.run(masked_and_design())

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    checks = result.report.total_security_checks
    print("\n=== contrast: the security-centric flow on the same "
          "substrate ===")
    print(f"security checks executed: {checks}; failures: "
          f"{len(result.failures)}")
    for record in result.report.records:
        for check in record.security_checks:
            print(f"   {check}")
    assert checks > 0
    assert result.all_passed
