"""X10 — security-aware DSE over countermeasure stacks.

The paper's endgame (Sec. IV): the flow explores the joint space of
countermeasures with security levels as first-class objectives.  This
bench builds five real configurations of the PRESENT S-box —

  plain, WDDL, auto-masked, masked+duplication, masked+parity —

measures (area, TVLA verdict, FIA coverage) for each, and extracts the
Pareto front.  Expected shape: the front holds plain (cheapest),
WDDL/masked (SCA level), and masked+duplication (SCA+FIA level), while
**masked+parity is dominated** — it pays duplication-class area but
loses the SCA level to the composition break of ref [61].
"""

import random

import pytest

from repro.core import Candidate, pareto_front
from repro.crypto import present_sbox_netlist
from repro.fia import Fault, FaultKind, duplicate_and_compare, \
    fault_campaign, parity_protect
from repro.netlist import encode_int, ppa_report
from repro.sca import (
    dual_rail_stimulus,
    leakage_traces,
    mask_netlist,
    tvla,
    wddl_transform,
)

N_TRACES = 3000
FIXED_VALUE = 0xB


def _tvla_t(netlist, make_stim, seed):
    rng_f, rng_r = random.Random(seed), random.Random(seed + 1)
    fixed = [make_stim(FIXED_VALUE, rng_f) for _ in range(N_TRACES)]
    rand = [make_stim(rng_r.randrange(16), rng_r)
            for _ in range(N_TRACES)]
    return tvla(
        leakage_traces(netlist, fixed, noise_sigma=0.3, seed=seed),
        leakage_traces(netlist, rand, noise_sigma=0.3, seed=seed + 1),
    ).max_abs_t


def _fia_coverage(netlist, alarm, region_prefix, seed=0):
    faults = [
        Fault(g, FaultKind.STUCK_AT_0) for g in netlist.gates
        if g.startswith(region_prefix)
    ]
    if not faults or alarm is None:
        return 0.0
    report = fault_campaign(netlist, faults, n_vectors=64, alarm=alarm,
                            seed=seed)
    return report.coverage


def build_candidates():
    base = present_sbox_netlist()
    candidates = []

    def plain_stim(x, rng):
        return encode_int(x, [f"x{i}" for i in range(4)])

    candidates.append(Candidate(
        "plain",
        objectives={
            "area": ppa_report(base).area,
            "tvla_t": _tvla_t(base, plain_stim, 1),
            "fia_coverage": 0.0,
        }))

    dual, _ = wddl_transform(base)
    candidates.append(Candidate(
        "wddl",
        objectives={
            "area": ppa_report(dual).area,
            "tvla_t": _tvla_t(
                dual, lambda x, rng: dual_rail_stimulus(plain_stim(x, rng)),
                11),
            "fia_coverage": 0.0,
        }))

    masked = mask_netlist(base)

    def masked_stim(x, rng):
        return masked.stimulus(plain_stim(x, rng), rng)

    candidates.append(Candidate(
        "masked",
        objectives={
            "area": ppa_report(masked.netlist).area,
            "tvla_t": _tvla_t(masked.netlist, masked_stim, 21),
            "fia_coverage": 0.0,
        }))

    for scheme_name, protect in (("masked+dup", duplicate_and_compare),
                                 ("masked+parity", parity_protect)):
        protected = protect(masked.netlist)
        candidates.append(Candidate(
            scheme_name,
            objectives={
                "area": ppa_report(protected.netlist).area,
                "tvla_t": _tvla_t(protected.netlist, masked_stim,
                                  31 if scheme_name == "masked+dup"
                                  else 41),
                "fia_coverage": _fia_coverage(
                    protected.netlist, protected.alarm, "m_"),
            }))

    # Derive the step-function security levels the DSE trades on.
    for candidate in candidates:
        candidate.objectives["sca_level"] = (
            1.0 if candidate.objectives["tvla_t"] <= 4.5 else 0.0)
        candidate.objectives["fia_level"] = (
            1.0 if candidate.objectives["fia_coverage"] >= 0.99 else 0.0)
    return candidates


def test_stack_dse(benchmark):
    candidates = benchmark.pedantic(build_candidates, rounds=1,
                                    iterations=1)
    front = pareto_front(candidates,
                         maximize=["sca_level", "fia_level"],
                         minimize=["area"])
    front_names = {c.name for c in front}
    print("\n=== DSE over countermeasure stacks (PRESENT S-box) ===")
    print(f"{'stack':<16} {'area':>8} {'TVLA |t|':>9} {'FIA cov':>8} "
          f"{'SCA lvl':>8} {'FIA lvl':>8} {'Pareto':>7}")
    for c in candidates:
        o = c.objectives
        print(f"{c.name:<16} {o['area']:>8.0f} {o['tvla_t']:>9.1f} "
              f"{o['fia_coverage']:>8.2f} {o['sca_level']:>8.0f} "
              f"{o['fia_level']:>8.0f} "
              f"{'yes' if c.name in front_names else 'no':>7}")
    by_name = {c.name: c.objectives for c in candidates}
    # the security facts
    assert by_name["plain"]["tvla_t"] > 4.5
    assert by_name["masked"]["tvla_t"] < 4.5
    assert by_name["wddl"]["tvla_t"] < 4.5
    assert by_name["masked+dup"]["tvla_t"] < 4.5
    assert by_name["masked+parity"]["tvla_t"] > 4.5   # ref [61]
    assert by_name["masked+dup"]["fia_level"] == 1.0
    # the DSE consequence: the broken composition is never on the front
    assert "masked+parity" not in front_names
    assert "masked+dup" in front_names
