"""T2 — Table II: security schemes per design stage, executed.

Runs all 24 (stage x threat) cell demos from
:mod:`repro.core.table2` and prints the measured grid — the paper's
survey table regenerated with evidence.
"""

import pytest

from repro.core import all_demos, render_table, run_all
from repro.core.stages import DesignStage
from repro.core.threats import ThreatVector


def test_table2_full_grid(benchmark):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print("\n" + render_table(results))
    # Full 6x4 coverage.
    cells = {(r.stage, r.threat) for r in results}
    assert len(cells) == len(DesignStage) * len(ThreatVector) == 24
    # Every demo produced a finite measured value and a description.
    for result in results:
        assert result.value == result.value  # not NaN
        assert result.detail
    # Spot-check headline outcomes hold.
    by_cell = {(r.stage, r.threat): r for r in results}
    wddl = by_cell[(DesignStage.LOGIC_SYNTHESIS,
                    ThreatVector.SIDE_CHANNEL)]
    assert wddl.value > 5.0          # WDDL removes a large |t|
    split = by_cell[(DesignStage.PHYSICAL_SYNTHESIS,
                     ThreatVector.IP_PIRACY)]
    assert split.value > 0.2         # lifting reduces CCR materially
    mero = by_cell[(DesignStage.TESTING, ThreatVector.TROJAN)]
    assert mero.value > 0.0          # MERO beats random coverage
