"""X9 — full-stack attacks against gate-level AES-128.

The paper's threats, run end-to-end against real hardware (a 7,400-cell
round-serial AES datapath built, simulated, and attacked entirely
inside this framework):

* functional sign-off: the netlist matches FIPS-197;
* side channel: CPA on simulated register-switching power recovers a
  key byte from a few hundred traces;
* fault injection: register-level byte faults before round 10 feed the
  DFA, which recovers the complete master key;
* test interface: the scan chain through the state register leaks the
  key in one mission cycle + one unload.
"""

import random

import numpy as np
import pytest

from repro.crypto import (
    AES128,
    aes_datapath_netlist,
    encryption_schedule,
    run_aes_datapath,
    run_aes_datapath_batch,
)
from repro.dft import netlist_scan_attack
from repro.fia import DfaAttacker
from repro.sca import cpa_attack, sequential_leakage_traces
from repro.sca.power_model import HW8


def run_full_stack():
    rng = random.Random(1)
    key = [rng.randrange(256) for _ in range(16)]
    datapath = aes_datapath_netlist()
    aes = AES128(key)

    # Functional verification against the software model.
    pt = [rng.randrange(256) for _ in range(16)]
    functional_ok = run_aes_datapath(datapath, pt, key) == aes.encrypt(pt)

    # CPA on register-switching power (first two cycles).
    n_traces = 300
    pts = [[rng.randrange(256) for _ in range(16)]
           for _ in range(n_traces)]
    runs = [encryption_schedule(p, key)[:2] for p in pts]
    traces = sequential_leakage_traces(datapath, runs, noise_sigma=2.0,
                                       seed=2)
    byte0 = np.array([p[0] for p in pts])
    cpa = cpa_attack(traces, byte0,
                     hypothesis=lambda p, k: HW8[np.bitwise_xor(p, k)])

    # DFA with register-level fault injection into the real datapath;
    # all faulty encryptions run as one bit-parallel batch.
    attacker = DfaAttacker(
        aes.encrypt,
        lambda p, byte_idx, fv: run_aes_datapath(
            datapath, p, key, fault_round=10, fault_byte=byte_idx,
            fault_value=fv),
        seed=3,
        batch_oracle=lambda queries: run_aes_datapath_batch(
            datapath, key, [(p, 10, b, fv) for p, b, fv in queries]))
    dfa = attacker.attack(max_faults_per_byte=5)

    # Scan attack through the inserted chain (reusing the datapath).
    scan = netlist_scan_attack(key, seed=4, datapath=datapath)

    return {
        "cells": datapath.num_cells(),
        "flops": len(datapath.flops),
        "functional_ok": functional_ok,
        "cpa_rank": cpa.rank_of(key[0]),
        "cpa_traces": n_traces,
        "dfa_success": dfa.success,
        "dfa_key_ok": dfa.recovered_master_key == key,
        "dfa_faults": dfa.faults_used,
        "scan_success": scan.success,
        "scan_chain": scan.scanned_words,
    }


def test_full_stack_aes(benchmark):
    result = benchmark.pedantic(run_full_stack, rounds=1, iterations=1)
    print("\n=== full-stack attacks on gate-level AES-128 ===")
    print(f"datapath: {result['cells']} cells, {result['flops']} flops; "
          f"matches FIPS-197: {result['functional_ok']}")
    print(f"CPA (register HD power, {result['cpa_traces']} traces): "
          f"true key byte at rank {result['cpa_rank']}")
    print(f"DFA (register faults before round 10): success = "
          f"{result['dfa_success']}, full key recovered = "
          f"{result['dfa_key_ok']} from {result['dfa_faults']} faults")
    print(f"scan attack: key recovered via the {result['scan_chain']}"
          f"-bit chain = {result['scan_success']}")
    assert result["functional_ok"]
    assert result["cpa_rank"] == 0
    assert result["dfa_success"] and result["dfa_key_ok"]
    assert result["scan_success"]
