"""X14 — the multi-tenant HTTP gateway under concurrent client load.

One in-process gateway (ephemeral port, warm worker pool) serving
``CLIENTS`` concurrent tenants-worth of traffic: every client thread
submits ``PER_CLIENT`` distinct ``netlist-ppa`` jobs over its own
HTTP connection, follows each to its terminal event, and the round is
timed end to end.  Reported: p50/p99 submission latency (request to
receipt), end-to-end jobs/second, and the cache round trip — the
identical round resubmitted must be served 100% from the
content-addressed store, and every receipt's ``spec_hash`` must equal
the locally constructed :class:`~repro.service.JobSpec` hash
(transport parity: HTTP submission addresses the same computation as
in-process construction).

Gates (``run_bench.py --check`` runs this file):

* all ``CLIENTS x PER_CLIENT`` jobs succeed in both rounds,
* round 2 is all cache hits with bit-identical results,
* cold throughput >= ``MIN_COLD_JOBS_PER_S`` and cache-served
  throughput >= ``MIN_WARM_JOBS_PER_S`` (conservative floors —
  an 8-way concurrent load must not collapse the single-scheduler
  command loop),
* p99 submission latency stays under ``MAX_SUBMIT_P99_S``.
"""

import tempfile
import threading
import time

from repro.netlist import c17, netlist_to_dict
from repro.service import ArtifactStore, JobSpec, SqliteRunDatabase
from repro.service.client import GatewayClient
from repro.service.gateway import Gateway
from repro.service.tenants import Tenant, TenantRegistry

CLIENTS = 8
PER_CLIENT = 12
WORKERS = 2

MIN_COLD_JOBS_PER_S = 4.0
MIN_WARM_JOBS_PER_S = 10.0
MAX_SUBMIT_P99_S = 2.0


def _percentile(values, q):
    values = sorted(values)
    index = min(len(values) - 1, int(round(q * (len(values) - 1))))
    return values[index]


def _client_round(host, port, token, digest, seeds, submit_latencies,
                  finals, errors):
    """One client thread: submit every seed, then follow each to done."""
    try:
        client = GatewayClient(host, port, token, timeout=60.0)
        receipts = []
        for seed in seeds:
            start = time.perf_counter()
            receipt = client.submit_job(
                "netlist-ppa", {"netlist": digest}, seed=seed)
            submit_latencies.append(time.perf_counter() - start)
            receipts.append((seed, receipt))
        for seed, receipt in receipts:
            final = client.wait(receipt["job_ids"][0], timeout=120.0)
            finals.append((seed, receipt["spec_hashes"][0], final))
        client.close()
    except Exception as exc:   # noqa: BLE001 — surfaced by the caller
        errors.append(exc)


def _round(host, port, token, digest, offset=0):
    """All clients concurrently; returns (latencies, finals, wall_s)."""
    submit_latencies, finals, errors = [], [], []
    threads = []
    start = time.perf_counter()
    for c in range(CLIENTS):
        seeds = [offset + c * PER_CLIENT + i for i in range(PER_CLIENT)]
        threads.append(threading.Thread(
            target=_client_round,
            args=(host, port, token, digest, seeds,
                  submit_latencies, finals, errors)))
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - start
    assert not errors, errors[:3]
    return submit_latencies, finals, wall_s


def run_gateway_load():
    root = tempfile.mkdtemp(prefix="bench-gateway-")
    store = ArtifactStore(f"{root}/store")
    registry = TenantRegistry([Tenant(
        "bench", "bench-token", rate=10_000.0, burst=10_000,
        max_in_flight=4096)])
    gateway = Gateway(store, registry,
                      rundb=SqliteRunDatabase(f"{root}/runs.sqlite"),
                      workers=WORKERS)
    host, port = gateway.start()
    try:
        seed_client = GatewayClient(host, port, "bench-token")
        digest = seed_client.publish_netlist(netlist_to_dict(c17()))
        seed_client.close()

        cold_lat, cold_finals, cold_wall = _round(
            host, port, "bench-token", digest)
        warm_lat, warm_finals, warm_wall = _round(
            host, port, "bench-token", digest)
    finally:
        gateway.shutdown()

    jobs = CLIENTS * PER_CLIENT
    assert len(cold_finals) == len(warm_finals) == jobs
    assert all(f["status"] == "succeeded" for _, _, f in cold_finals)
    assert all(f["status"] == "succeeded" for _, _, f in warm_finals)
    # Round 2 is the same work: 100% cache-served, same results.
    assert all(f["cache_hit"] for _, _, f in warm_finals)
    by_seed = {seed: f["result"] for seed, _, f in cold_finals}
    assert all(f["result"] == by_seed[seed]
               for seed, _, f in warm_finals)
    # Transport parity: every receipt hash is the locally built hash.
    for seed, spec_hash, final in cold_finals + warm_finals:
        expected = JobSpec("netlist-ppa",
                           params={"netlist": digest},
                           seed=seed).spec_hash
        assert spec_hash == expected
        assert final["spec_hash"] == expected

    all_lat = cold_lat + warm_lat
    return {
        "clients": CLIENTS,
        "jobs_per_round": jobs,
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "cold_jobs_per_s": jobs / cold_wall,
        "warm_jobs_per_s": jobs / warm_wall,
        "submit_p50_s": _percentile(all_lat, 0.50),
        "submit_p99_s": _percentile(all_lat, 0.99),
        "warm_over_cold": cold_wall / warm_wall,
    }


def test_gateway_concurrent_load(benchmark):
    result = benchmark.pedantic(run_gateway_load, rounds=1,
                                iterations=1)
    print(f"\n=== gateway load ({result['clients']} clients x "
          f"{result['jobs_per_round'] // result['clients']} jobs, "
          f"{WORKERS} workers) ===")
    print(f"cold round : {result['cold_wall_s']:.2f}s "
          f"({result['cold_jobs_per_s']:.1f} jobs/s)")
    print(f"warm round : {result['warm_wall_s']:.2f}s "
          f"({result['warm_jobs_per_s']:.1f} jobs/s, 100% cache, "
          f"{result['warm_over_cold']:.1f}x)")
    print(f"submit lat : p50 {result['submit_p50_s'] * 1e3:.1f}ms, "
          f"p99 {result['submit_p99_s'] * 1e3:.1f}ms")
    assert result["cold_jobs_per_s"] >= MIN_COLD_JOBS_PER_S
    assert result["warm_jobs_per_s"] >= MIN_WARM_JOBS_PER_S
    assert result["submit_p99_s"] <= MAX_SUBMIT_P99_S
