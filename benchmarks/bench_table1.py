"""T1 — Table I: security threats for ICs and the roles of EDA.

Regenerates the table from the threat-model catalog and backs every
row with a live attack + EDA-role demonstration:

* side channels:   CPA recovers a key (attack) / TVLA evaluates (EDA);
* fault injection: DFA recovers a key (attack) / infective blocks (EDA);
* IP piracy:       SAT attack unlocks (attack) / SFLL resists (EDA);
* Trojans:         rare trigger evades random test (attack) /
                   fingerprint screens it (EDA).
"""

import random

import pytest

from repro.core import render_table_i, table_i


def evidence_side_channel():
    from repro.crypto import sbox_with_key_netlist
    from repro.netlist import encode_int
    from repro.sca import cpa_attack, leakage_traces, tvla
    target = sbox_with_key_netlist()
    rng = random.Random(1)
    key = 0x6B
    pts = [rng.randrange(256) for _ in range(800)]
    stims = []
    for pt in pts:
        s = encode_int(pt, [f"p{i}" for i in range(8)])
        s.update(encode_int(key, [f"k{i}" for i in range(8)]))
        stims.append(s)
    traces = leakage_traces(target, stims, noise_sigma=2.0, seed=2)
    attack = cpa_attack(traces, pts)
    fixed = leakage_traces(target, [stims[0]] * 800, noise_sigma=2.0,
                           seed=3)
    evaluation = tvla(fixed, traces)
    return {
        "attack": f"CPA recovers key {attack.best_key:#04x} "
                  f"(true {key:#04x}) from 800 traces",
        "eda": f"TVLA evaluation flags the leak pre-silicon "
               f"(max|t| = {evaluation.max_abs_t:.1f})",
        "ok": attack.best_key == key and evaluation.leaks,
    }


def evidence_fault_injection():
    from repro.fia import DfaAttacker, InfectiveAES, dfa_on_unprotected
    key = [random.Random(4).randrange(256) for _ in range(16)]
    attack = dfa_on_unprotected(key, seed=5, max_faults_per_byte=6)
    infective = InfectiveAES(key, seed=6)
    mitigated = DfaAttacker(
        infective.encrypt,
        lambda pt, b, f: infective.encrypt_with_fault(pt, b, f),
        seed=7).attack(max_faults_per_byte=4)
    return {
        "attack": f"DFA recovers the full AES key from "
                  f"{attack.faults_used} faulty encryptions",
        "eda": "design-time infective countermeasure blocks the same "
               "campaign",
        "ok": attack.success and not mitigated.success,
    }


def evidence_piracy():
    from repro.ip import attack_locked_circuit, lock_xor, sfll_hd_lock
    from repro.netlist import random_circuit
    base = random_circuit(7, 60, 3, seed=8)
    epic = lock_xor(base, 8, seed=8)
    epic_attack = attack_locked_circuit(epic)
    sfll = sfll_hd_lock(base, base.outputs[0], h=0, n_protect_bits=7,
                        seed=8)
    sfll_attack = attack_locked_circuit(sfll.locked, max_iterations=30)
    return {
        "attack": f"oracle-guided SAT attack unlocks EPIC-8 in "
                  f"{epic_attack.iterations} DIPs",
        "eda": f"SFLL-HD hardening pushes the same attacker past "
               f"{sfll_attack.iterations} DIPs"
               + (" (budget exhausted)" if sfll_attack.gave_up else ""),
        "ok": epic_attack.success and
        (sfll_attack.gave_up
         or sfll_attack.iterations > epic_attack.iterations),
    }


def evidence_trojan():
    from repro.netlist import random_circuit
    from repro.trojan import (apply_test_set, build_fingerprint,
                              insert_rare_trigger_trojan,
                              random_test_set, screen_population)
    host = random_circuit(12, 150, 6, seed=8)
    trojan = insert_rare_trigger_trojan(host, trigger_width=3, seed=1)
    functional = apply_test_set(trojan, random_test_set(host, 50, seed=9))
    fingerprint = build_fingerprint(host, n_chips=25, seed=10)
    _, detection = screen_population(fingerprint, host, trojan.netlist,
                                     n_chips=10)
    return {
        "attack": f"rare-trigger Trojan (p ~ "
                  f"{trojan.trigger_probability:.0e}) evades 50 random "
                  f"functional vectors: triggered = "
                  f"{functional.triggered}",
        "eda": f"path-delay fingerprinting screens it out "
               f"({detection:.0%} detection)",
        "ok": detection > 0.8,
    }


def run_table1():
    return {
        "side-channel attacks": evidence_side_channel(),
        "fault-injection attacks": evidence_fault_injection(),
        "IP piracy and counterfeiting": evidence_piracy(),
        "hardware Trojans": evidence_trojan(),
    }


def test_table1(benchmark):
    evidence = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    print("\n" + render_table_i(table_i(), with_evidence=False))
    print("\n=== measured evidence per row ===")
    for vector, row in evidence.items():
        print(f"\n{vector}:")
        print(f"   attack demo: {row['attack']}")
        print(f"   EDA role:    {row['eda']}")
        assert row["ok"], vector
    assert len(table_i()) == 4
