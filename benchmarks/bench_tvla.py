"""X5 — Sec. III-C: TVLA methodology in practice [16].

Characterizes the t-statistic's behaviour the way an EDA sign-off team
must understand it:

* on a leaky target, max|t| grows ~ sqrt(N) with trace count;
* on a masked target, max|t| stays under the 4.5 threshold at first
  order — but second-order TVLA (centered-squared traces) exposes the
  remaining bivariate leakage;
* measurement noise shifts the trace count needed, not the verdict.
"""

import random

import pytest

from repro.crypto import sbox_with_key_netlist
from repro.netlist import encode_int
from repro.sca import (
    isw_and_netlist,
    leakage_traces,
    random_share_stimulus,
    tvla,
    tvla_sweep,
)

COUNTS = (250, 500, 1000, 2000, 4000)


def leaky_traces(n, fixed, sigma, seed):
    target = sbox_with_key_netlist()
    rng = random.Random(seed)
    stims = []
    for _ in range(n):
        pt = 0x3C if fixed else rng.randrange(256)
        s = encode_int(pt, [f"p{i}" for i in range(8)])
        s.update(encode_int(0x5A, [f"k{i}" for i in range(8)]))
        stims.append(s)
    return leakage_traces(target, stims, noise_sigma=sigma, seed=seed)


def masked_traces(n, fixed, seed):
    gadget = isw_and_netlist()
    rng = random.Random(seed)
    stims = []
    for _ in range(n):
        if fixed:
            a, b = 1, 1
        else:
            a, b = rng.randint(0, 1), rng.randint(0, 1)
        stims.append(random_share_stimulus(a, b, 3, rng))
    return leakage_traces(gadget, stims, noise_sigma=0.25, seed=seed)


def two_share_traces(n, fixed, seed):
    """Canonical univariate 2nd-order target: a 2-share register.

    Both shares (m, s^m) contribute to the same sample; the mean is
    secret-independent but the *variance* is not — the textbook case
    second-order TVLA exists for.
    """
    from repro.netlist import GateType, Netlist
    register = Netlist("two_share_reg")
    register.add_input("m")
    register.add_input("x")           # x = s ^ m, computed upstream
    register.add_gate("q0", GateType.BUF, ["m"])
    register.add_gate("q1", GateType.BUF, ["x"])
    register.add_output("q0")
    register.add_output("q1")
    rng = random.Random(seed)
    stims = []
    for _ in range(n):
        secret = 1 if fixed else rng.randint(0, 1)
        m = rng.randint(0, 1)
        stims.append({"m": m, "x": secret ^ m})
    return leakage_traces(register, stims, noise_sigma=0.25, seed=seed)


def run_tvla_study():
    n = max(COUNTS)
    out = {}
    for sigma in (1.0, 3.0):
        sweep = tvla_sweep(leaky_traces(n, True, sigma, 1),
                           leaky_traces(n, False, sigma, 2), COUNTS)
        out[f"leaky_sigma{sigma}"] = list(sweep)
    fixed = masked_traces(n, True, 3)
    rand = masked_traces(n, False, 4)
    out["masked_order1"] = list(tvla_sweep(fixed, rand, COUNTS, order=1))
    fixed2 = two_share_traces(n, True, 5)
    rand2 = two_share_traces(n, False, 6)
    out["two_share_order1"] = tvla(fixed2, rand2, order=1).max_abs_t
    out["two_share_order2"] = tvla(fixed2, rand2, order=2).max_abs_t
    return out


def test_tvla_practice(benchmark):
    study = benchmark.pedantic(run_tvla_study, rounds=1, iterations=1)
    print("\n=== TVLA in practice: max|t| vs trace count ===")
    header = "".join(f"{c:>8}" for c in COUNTS)
    print(f"{'target':<22}{header}")
    for name in ("leaky_sigma1.0", "leaky_sigma3.0", "masked_order1"):
        row = "".join(f"{v:>8.1f}" for v in study[name])
        print(f"{name:<22}{row}")
    print(f"2-share register at N={max(COUNTS)}: 1st-order max|t| = "
          f"{study['two_share_order1']:.1f}, 2nd-order max|t| = "
          f"{study['two_share_order2']:.1f}")

    low_noise = study["leaky_sigma1.0"]
    high_noise = study["leaky_sigma3.0"]
    masked = study["masked_order1"]
    # t grows with N on the leaky target (sqrt-N shape: 16x traces
    # should give ~4x t; accept any clear monotone growth).
    assert low_noise[-1] > 2 * low_noise[0]
    assert low_noise[-1] > 4.5
    # more noise -> smaller t at equal N, same final verdict
    assert high_noise[-1] < low_noise[-1]
    assert high_noise[-1] > 4.5
    # masked designs pass first order at every N
    assert all(t < 4.5 for t in masked)
    assert study["two_share_order1"] < 4.5
    # ...but second-order TVLA sees through 2-share masking
    assert study["two_share_order2"] > 4.5
