"""X6 — Sec. IV: security metrics behave as step functions of effort.

The paper: "one can expect some security metrics to act more like step
functions, where certain efforts must be spent to reach a security
level, but spending more will not provide additional benefits. This is
fundamentally different from classical metrics like area."

Measured here on logic locking: area cost climbs smoothly with every
key bit, while the *security level* (which attacker classes are priced
out, derived from measured SAT-attack effort) moves only at thresholds.
The DSE consequence is asserted too: every Pareto-optimal configuration
sits exactly at a level boundary.
"""

import pytest

from repro.core import (
    locking_candidates,
    pareto_front,
    sat_attack_resistance_steps,
    sweep_locking,
)
from repro.netlist import random_circuit

KEY_WIDTHS = [0, 2, 4, 6, 8, 12, 16, 20]


def run_step_study():
    base = random_circuit(8, 80, 4, seed=7)
    points = sweep_locking(base, KEY_WIDTHS, seed=3, max_iterations=400)
    candidates = locking_candidates(points,
                                    step_thresholds=(0, 2, 8))
    front = pareto_front(candidates, maximize=["security_level"],
                         minimize=["area"])
    steps = sat_attack_resistance_steps()
    return {"points": points, "candidates": candidates, "front": front,
            "steps": steps}


def test_step_function_metrics(benchmark):
    study = benchmark.pedantic(run_step_study, rounds=1, iterations=1)
    points = study["points"]
    candidates = study["candidates"]
    print("\n=== smooth cost vs stepped security (locking sweep) ===")
    print(f"{'key bits':>8} {'area (smooth)':>14} "
          f"{'attack DIPs':>12} {'security level (stepped)':>25}")
    for point, cand in zip(points, candidates):
        print(f"{point.key_bits:>8} {point.area:>14.1f} "
              f"{point.sat_attack_iterations:>12} "
              f"{cand.objectives['security_level']:>25.0f}")
    print("Pareto-optimal configurations: "
          + ", ".join(c.name for c in study["front"]))

    areas = [p.area for p in points]
    levels = [c.objectives["security_level"] for c in candidates]
    # cost is strictly increasing: every key bit is paid for
    assert all(b > a for a, b in zip(areas, areas[1:]))
    # security level is a step function: non-decreasing with plateaus
    assert all(b >= a for a, b in zip(levels, levels[1:]))
    assert len(set(levels)) < len(levels)  # at least one flat segment
    # the declared model agrees: no marginal gain inside a segment
    steps = study["steps"]
    assert steps.marginal_gain(9, 3) == 0
    assert steps.marginal_gain(9, 10) == 1
    # Pareto front members dominate their flat-segment neighbours:
    # no front member can be strictly inside a plateau above another
    # cheaper member of the same level.
    by_level = {}
    for cand in study["front"]:
        level = cand.objectives["security_level"]
        by_level.setdefault(level, []).append(cand.objectives["area"])
    for level, costs in by_level.items():
        assert len(costs) == 1  # one (cheapest) config per level
