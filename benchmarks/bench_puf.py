"""X8 — Sec. III-C/III-E: PUF quality vs layout and the modeling attack.

Evaluates arbiter-PUF populations across layout-asymmetry settings
(ref [30]: asymmetric layout enhances element variation) and RO PUFs,
reporting the three standard metrics; then runs the ML modeling attack
that a security-aware verification flow must include in its threat
model.  Paper-shape expectations: metrics near ideal (0.5 / 1.0 / 0.5),
asymmetry helps reliability, and the bare arbiter PUF is clonable.
"""

import pytest

from repro.ip import (
    ArbiterPuf,
    evaluate_arbiter_population,
    evaluate_ro_population,
    model_attack_arbiter,
)


def run_puf_study():
    rows = []
    for asymmetry in (0.0, 1.0, 2.0):
        metrics = evaluate_arbiter_population(
            n_chips=15, n_challenges=400, n_repeats=7,
            asymmetry=asymmetry, seed=1)
        rows.append((asymmetry, metrics))
    ro = evaluate_ro_population(n_chips=15, n_rings=64, n_repeats=7,
                                seed=2)
    attack = {
        n_train: model_attack_arbiter(ArbiterPuf(64, seed=3),
                                      n_train=n_train, seed=4)
        for n_train in (200, 1000, 4000)
    }
    return {"arbiter": rows, "ro": ro, "attack": attack}


def test_puf_quality_and_attack(benchmark):
    study = benchmark.pedantic(run_puf_study, rounds=1, iterations=1)
    print("\n=== arbiter PUF population metrics vs layout asymmetry ===")
    print(f"{'asymmetry':>9} {'uniformity':>11} {'reliability':>12} "
          f"{'uniqueness':>11}")
    for asymmetry, m in study["arbiter"]:
        print(f"{asymmetry:>9.1f} {m.uniformity:>11.3f} "
              f"{m.reliability:>12.4f} {m.uniqueness:>11.3f}")
    ro = study["ro"]
    print(f"RO PUF: uniformity {ro.uniformity:.3f}, reliability "
          f"{ro.reliability:.4f}, uniqueness {ro.uniqueness:.3f}")
    print("modeling attack accuracy vs training CRPs: "
          + ", ".join(f"{n}: {a:.1%}"
                      for n, a in study["attack"].items()))
    base = study["arbiter"][0][1]
    enhanced = study["arbiter"][-1][1]
    # quality metrics near ideal for all configurations
    for _, m in study["arbiter"]:
        assert 0.4 < m.uniformity < 0.6
        assert m.reliability > 0.95
        assert 0.4 < m.uniqueness < 0.6
    # asymmetric layout enhances reliability (variation up, noise flat)
    assert enhanced.reliability >= base.reliability
    # the modeling attack improves with data and ends up near-perfect
    accuracies = list(study["attack"].values())
    assert accuracies[-1] > accuracies[0]
    assert accuracies[-1] > 0.95
