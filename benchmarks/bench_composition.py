"""X1 — Sec. IV composition cross-effects (ref [61]).

The paper: "adding error-detecting logic can deteriorate resilience
against SCAs".  This bench composes fault detection onto a masked
gadget two ways and reproduces the exact effect:

* duplication-with-comparison: FIA coverage 0 -> 1.0, TVLA unchanged;
* parity prediction: FIA coverage 0 -> 1.0 BUT the parity wire carries
  the XOR of the shares — the unmasked secret — and TVLA explodes.

The composition engine must flag the second stack and pass the first.
"""

import pytest

from repro.core import (
    CompositionEngine,
    duplication_countermeasure,
    masked_and_design,
    parity_countermeasure,
    wddl_countermeasure,
)


def run_composition_matrix():
    engine = CompositionEngine(n_traces=4000, noise_sigma=0.25, seed=1)
    stacks = {
        "duplication": [duplication_countermeasure()],
        "parity": [parity_countermeasure()],
        "wddl": [wddl_countermeasure()],
    }
    out = {}
    for name, stack in stacks.items():
        _, report = engine.compose(masked_and_design(), stack)
        baseline = report.steps[0][1]
        final = report.steps[-1][1]
        out[name] = {
            "baseline_t": baseline.tvla_max_t,
            "final_t": final.tvla_max_t,
            "baseline_cov": baseline.fia_coverage,
            "final_cov": final.fia_coverage,
            "area_factor": final.area / baseline.area,
            "flagged": bool(report.harmful_effects),
            "notes": [e.note for e in report.harmful_effects],
        }
    return out


def test_composition_cross_effects(benchmark):
    matrix = benchmark.pedantic(run_composition_matrix, rounds=1,
                                iterations=1)
    print("\n=== Sec. IV: composition of masking + fault detection ===")
    print(f"{'stack':<14} {'TVLA |t| before':>16} {'after':>8} "
          f"{'FIA cov before':>15} {'after':>7} {'area x':>7} "
          f"{'flagged':>8}")
    for name, row in matrix.items():
        print(f"{name:<14} {row['baseline_t']:>16.2f} "
              f"{row['final_t']:>8.2f} {row['baseline_cov']:>15.2f} "
              f"{row['final_cov']:>7.2f} {row['area_factor']:>7.2f} "
              f"{str(row['flagged']):>8}")
    dup, par = matrix["duplication"], matrix["parity"]
    # Both reach full fault-detection coverage...
    assert dup["final_cov"] == 1.0 and par["final_cov"] == 1.0
    # ...but only parity destroys the masking, and the engine sees it.
    assert dup["final_t"] < 4.5 and not dup["flagged"]
    assert par["final_t"] > 4.5 and par["flagged"]
    assert any("masking broken" in n for n in par["notes"])
    # WDDL composes safely with masking.
    assert matrix["wddl"]["final_t"] < 4.5
