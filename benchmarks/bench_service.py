"""X13 — the warm-worker execution core vs fork-per-job dispatch.

Three benchmarks for the execution service, gated by
``run_bench.py --check`` since the warm-worker refactor:

* a repeated locking-sweep campaign — the same sweep submitted twice
  through one persistent :class:`~repro.service.WorkerPool` over one
  artifact store, timed against PR 4's fork-per-job scheduler on the
  same workload.  The cold pooled submission must already beat the
  per-job baseline (no new process per job, event-driven completion
  instead of poll-quantized joins); the warm resubmission — warm
  workers, warm engine caches, results addressable by spec hash —
  must clear 3x.  Serial, inline, per-job, cold-pooled and
  warm-pooled results are asserted bit-identical on the deterministic
  fields first;
* a run-database query microbenchmark at 10k records — the indexed
  SQLite backend's ``query(spec_hash=...)`` against the legacy JSONL
  backend's cold full-file scan, plus a 1k-record point showing the
  indexed lookup scales sub-linearly while the scan grows with the
  log;
* the original PR 4 cache-hit characterisation: a resubmitted
  campaign is served ≥90% from the content-addressed store, with the
  run database recording the hits.
"""

import shutil
import tempfile
import time

import pytest

from repro.core.dse import sweep_locking
from repro.netlist import c17, ripple_carry_adder
from repro.service import (
    ArtifactStore,
    JsonlRunDatabase,
    RunDatabase,
    RunRecord,
    SqliteRunDatabase,
    WorkerPool,
    locking_sweep_campaign,
)

KEY_WIDTHS = [1, 2, 3, 4]     # c17 fits at most 4 XOR key gates
SEEDS = [3, 4, 5, 6, 7, 8]    # one campaign invocation per seed
MAX_ITERATIONS = 40
WORKERS = 2

DB_RECORDS = 10_000
DB_SMALL = 1_000
DB_QUERY_REPEATS = 200


def _strip(points):
    """The deterministic fields: everything but the attack wall time."""
    return [(p.key_bits, p.area, p.sat_attack_iterations, p.attack_gave_up)
            for p in points]


def _sweeps(workers, store=None, pool=None, persistent=True):
    """The benchmark workload: one locking-sweep campaign per seed.

    Without ``store``, every campaign gets a throwaway store (the
    fork-per-job baseline and the inline reference run cold); with
    one, campaigns share it — exactly how a long-lived service run
    accumulates reusable results.
    """
    base = c17()
    results = []
    for seed in SEEDS:
        results.append(_strip(locking_sweep_campaign(
            base, KEY_WIDTHS, seed=seed, max_iterations=MAX_ITERATIONS,
            workers=workers,
            store=store if store is not None
            else ArtifactStore(tempfile.mkdtemp(prefix="bench-service-")),
            pool=pool, persistent=persistent)))
    return results


def run_repeated_campaign():
    serial = [_strip(sweep_locking(c17(), KEY_WIDTHS, seed=seed,
                                   max_iterations=MAX_ITERATIONS))
              for seed in SEEDS]
    inline = _sweeps(workers=0)

    start = time.perf_counter()
    per_job = _sweeps(WORKERS, persistent=False)
    per_job_s = time.perf_counter() - start

    store = ArtifactStore(tempfile.mkdtemp(prefix="bench-service-warm-"))
    with WorkerPool(WORKERS) as pool:
        start = time.perf_counter()
        cold = _sweeps(WORKERS, store=store, pool=pool)
        pool_cold_s = time.perf_counter() - start
        start = time.perf_counter()
        warm = _sweeps(WORKERS, store=store, pool=pool)
        warm_s = time.perf_counter() - start

    assert serial == inline == per_job == cold == warm
    return {
        "campaigns": len(SEEDS),
        "jobs": len(SEEDS) * len(KEY_WIDTHS),
        "per_job_s": per_job_s,
        "pool_cold_s": pool_cold_s,
        "warm_resubmit_s": warm_s,
        "cold_speedup": per_job_s / pool_cold_s,
        "warm_speedup": per_job_s / warm_s,
    }


HOT_HASH = "ab" * 32
HOT_COUNT = 5


def _db_records(n):
    """A plausible service log: many runs, mostly unique spec hashes.

    Exactly :data:`HOT_COUNT` records carry :data:`HOT_HASH`, evenly
    spread, whatever ``n`` is — so a ``spec_hash`` query returns the
    same result set at every log size and the timing isolates lookup
    cost from result-decoding cost.
    """
    stride = n // HOT_COUNT
    return [
        RunRecord(f"run-{i % 40:03d}", f"j{i:05d}-lock", "locking-point",
                  HOT_HASH if i % stride == 3 else format(i, "08x") * 8,
                  "succeeded" if i % 7 else "failed",
                  attempts=1, wall_s=0.01 * (i % 13),
                  cache_hit=(i % 3 == 0), worker=f"pid{i % 8}",
                  seed=i, finished_at=1000.0 + i)
        for i in range(n)
    ]


def _time_queries(db, spec_hash, repeats, batches=5, fresh=None):
    """Best-batch mean seconds per ``query(spec_hash=...)``.

    The minimum over ``batches`` timed batches — load spikes only ever
    push a batch up, never down, so the min is the noise-robust
    statistic (same convention as ``run_bench.py --check``).  With
    ``fresh``, every call opens a new handle via the factory — the
    legacy CLI pattern the tail-offset cache cannot help, i.e. a
    full-file parse per query.
    """
    best = float("inf")
    for _ in range(batches):
        start = time.perf_counter()
        for _ in range(repeats):
            handle = fresh() if fresh is not None else db
            handle.query(spec_hash=spec_hash)
        best = min(best, (time.perf_counter() - start) / repeats)
    return best


def run_rundb_queries():
    root = tempfile.mkdtemp(prefix="bench-service-rundb-")
    timings = {}
    for label, n in (("small", DB_SMALL), ("large", DB_RECORDS)):
        records = _db_records(n)
        jsonl_path = f"{root}/runs-{n}.jsonl"
        JsonlRunDatabase(jsonl_path).record_many(records)
        sqlite = SqliteRunDatabase(f"{root}/runs-{n}.db")
        sqlite.record_many(records)
        target = HOT_HASH
        # Both backends agree before either is timed.
        hits = sqlite.query(spec_hash=target)
        assert hits == JsonlRunDatabase(jsonl_path).query(spec_hash=target)
        assert len(hits) == HOT_COUNT
        timings[label] = {
            "records": n,
            "jsonl_scan_s": _time_queries(
                None, target, repeats=1, batches=5,
                fresh=lambda path=jsonl_path: JsonlRunDatabase(path)),
            "sqlite_s": _time_queries(sqlite, target, DB_QUERY_REPEATS,
                                      batches=8),
        }
        sqlite.close()
    small, large = timings["small"], timings["large"]
    return {
        "records": DB_RECORDS,
        "jsonl_scan_s": large["jsonl_scan_s"],
        "sqlite_s": large["sqlite_s"],
        "scan_over_sqlite": large["jsonl_scan_s"] / large["sqlite_s"],
        "scan_growth": large["jsonl_scan_s"] / small["jsonl_scan_s"],
        "sqlite_growth": large["sqlite_s"] / small["sqlite_s"],
    }


def test_warm_pool_repeated_campaign(benchmark):
    result = benchmark.pedantic(run_repeated_campaign, rounds=1,
                                iterations=1)
    print(f"\n=== repeated locking-sweep campaign "
          f"({result['campaigns']} campaigns x {len(KEY_WIDTHS)} widths, "
          f"{WORKERS} workers) ===")
    print(f"fork-per-job : {result['per_job_s']:.3f}s")
    print(f"pool, cold   : {result['pool_cold_s']:.3f}s "
          f"({result['cold_speedup']:.1f}x)")
    print(f"pool, warm   : {result['warm_resubmit_s']:.3f}s "
          f"({result['warm_speedup']:.1f}x, bit-identical points)")
    # The acceptance gate: resubmitting through the warm pool beats
    # PR 4's dispatch >= 3x; even the cold pool must already win.
    assert result["warm_speedup"] >= 3.0
    assert result["cold_speedup"] >= 1.2


def test_rundb_indexed_queries(benchmark):
    result = benchmark.pedantic(run_rundb_queries, rounds=1, iterations=1)
    print(f"\n=== run-database spec-hash query "
          f"({result['records']} records) ===")
    print(f"jsonl scan : {result['jsonl_scan_s'] * 1e3:.2f}ms/query "
          f"(grew {result['scan_growth']:.1f}x from "
          f"{DB_SMALL} to {DB_RECORDS} records)")
    print(f"sqlite     : {result['sqlite_s'] * 1e3:.3f}ms/query "
          f"({result['scan_over_sqlite']:.0f}x faster, grew "
          f"{result['sqlite_growth']:.1f}x)")
    assert result["scan_over_sqlite"] >= 10.0
    # Sub-linear: over a 10x record-count step the indexed lookup
    # must grow far less than proportionally (the scan, by contrast,
    # grows with the log — reported above).  The result set is pinned
    # to HOT_COUNT rows at both sizes, so growth here is lookup cost.
    assert result["sqlite_growth"] <= 3.0


WIDTHS = [0, 2, 4, 6, 8]
SEED = 3


@pytest.fixture()
def service_dirs():
    root = tempfile.mkdtemp(prefix="bench-service-")
    yield root
    shutil.rmtree(root, ignore_errors=True)


def test_sweep_cold_vs_warm_cache(benchmark, service_dirs):
    store = ArtifactStore(service_dirs + "/store")
    rundb = RunDatabase(service_dirs + "/runs.jsonl")
    netlist = ripple_carry_adder(8)

    # Cold: populate the store (not benchmarked).
    cold = locking_sweep_campaign(netlist, WIDTHS, seed=SEED,
                                  store=store, rundb=rundb)

    # Warm: the benchmarked path — identical campaign, warm store.
    warm = benchmark(locking_sweep_campaign, netlist, WIDTHS,
                     seed=SEED, store=store, rundb=rundb)

    # Identical computation, identical points (wall time excluded).
    for a, b in zip(cold, warm):
        assert (a.key_bits, a.area, a.sat_attack_iterations,
                a.attack_gave_up) == \
               (b.key_bits, b.area, b.sat_attack_iterations,
                b.attack_gave_up)

    # ≥90% of the warm run's records are cache hits; the cold run's
    # are all misses.  (benchmark() replays the warm campaign several
    # times; every post-cold record must be a hit, so the aggregate
    # rate over all runs clears the bar comfortably.)
    records = rundb.records()
    assert len(records) >= 2 * len(WIDTHS)
    warm_records = records[len(WIDTHS):]
    hit_rate = (sum(1 for r in warm_records if r.cache_hit)
                / len(warm_records))
    assert hit_rate >= 0.90
    assert not any(r.cache_hit for r in records[:len(WIDTHS)])
