"""Flow execution service — cache-hit resubmission speedup.

The service's economic claim: a campaign resubmitted against a warm
artifact store is answered from content-addressed results instead of
recomputed, because the spec hash ``(job_type, params, seed)`` is
stable across processes and runs.  This bench times the same locking
sweep cold (every point computed) and warm (every point a cache hit)
and asserts the warm run is served ≥90% from cache — the resubmission
acceptance bar — with the run database recording the hits.

Not in ``run_bench.py --check``'s scope: the gate bounds flow
overhead; this file characterises the service layer itself.
"""

import shutil
import tempfile

import pytest

from repro.netlist import ripple_carry_adder
from repro.service import (
    ArtifactStore,
    RunDatabase,
    locking_sweep_campaign,
)

WIDTHS = [0, 2, 4, 6, 8]
SEED = 3


@pytest.fixture()
def service_dirs():
    root = tempfile.mkdtemp(prefix="bench-service-")
    yield root
    shutil.rmtree(root, ignore_errors=True)


def test_sweep_cold_vs_warm_cache(benchmark, service_dirs):
    store = ArtifactStore(service_dirs + "/store")
    rundb = RunDatabase(service_dirs + "/runs.jsonl")
    netlist = ripple_carry_adder(8)

    # Cold: populate the store (not benchmarked).
    cold = locking_sweep_campaign(netlist, WIDTHS, seed=SEED,
                                  store=store, rundb=rundb)

    # Warm: the benchmarked path — identical campaign, warm store.
    warm = benchmark(locking_sweep_campaign, netlist, WIDTHS,
                     seed=SEED, store=store, rundb=rundb)

    # Identical computation, identical points (wall time excluded).
    for a, b in zip(cold, warm):
        assert (a.key_bits, a.area, a.sat_attack_iterations,
                a.attack_gave_up) == \
               (b.key_bits, b.area, b.sat_attack_iterations,
                b.attack_gave_up)

    # ≥90% of the warm run's records are cache hits; the cold run's
    # are all misses.  (benchmark() replays the warm campaign several
    # times; every post-cold record must be a hit, so the aggregate
    # rate over all runs clears the bar comfortably.)
    records = rundb.records()
    assert len(records) >= 2 * len(WIDTHS)
    warm_records = records[len(WIDTHS):]
    hit_rate = (sum(1 for r in warm_records if r.cache_hit)
                / len(warm_records))
    assert hit_rate >= 0.90
    assert not any(r.cache_hit for r in records[:len(WIDTHS)])
