"""X2 — Sec. III-B/III-D: logic locking vs the SAT attack.

Sweeps EPIC key width on the AES S-box and measures the oracle-guided
SAT attack's effort (DIP count, wall time); then contrasts SFLL-HD at
equal key budget.  Paper-shape expectations: EPIC falls in few DIPs at
every practical width (DIPs grow mildly with key bits), while SFLL-HD's
DIP count scales with the protected input space — the
resilience/corruption trade-off the paper cites via [51].
"""

import time

import pytest

from repro.core import sweep_locking
from repro.crypto import aes_sbox_netlist
from repro.ip import attack_locked_circuit, lock_xor, sfll_hd_lock
from repro.netlist import random_circuit


def run_epic_sweep():
    sbox = aes_sbox_netlist()
    return sweep_locking(sbox, [4, 8, 16, 24], seed=1,
                         max_iterations=400)


def test_epic_key_width_sweep(benchmark):
    points = benchmark.pedantic(run_epic_sweep, rounds=1, iterations=1)
    print("\n=== EPIC locking on the AES S-box vs SAT attack ===")
    print(f"{'key bits':>8} {'area':>8} {'DIPs':>6} {'seconds':>8}")
    for p in points:
        print(f"{p.key_bits:>8} {p.area:>8.1f} "
              f"{p.sat_attack_iterations:>6} {p.attack_seconds:>8.2f}")
    # every width falls to the attack within the budget
    assert all(not p.attack_gave_up for p in points)
    # area grows monotonically with key bits — the smooth cost curve
    areas = [p.area for p in points]
    assert areas == sorted(areas)
    # attack effort stays tiny relative to 2^k brute force
    for p in points:
        assert p.sat_attack_iterations < 2 ** p.key_bits


def run_sfll_contrast():
    base = random_circuit(7, 60, 3, seed=2)
    epic = lock_xor(base, 7, seed=2)
    epic_attack = attack_locked_circuit(epic)
    results = {"epic_dips": epic_attack.iterations}
    for bits in (4, 5, 6, 7):
        sfll = sfll_hd_lock(base, base.outputs[0], h=0,
                            n_protect_bits=bits, seed=2)
        began = time.perf_counter()
        attack = attack_locked_circuit(sfll.locked, max_iterations=300)
        results[f"sfll_{bits}"] = (
            attack.iterations, attack.gave_up,
            time.perf_counter() - began)
    return results


def test_sfll_resilience_scaling(benchmark):
    results = benchmark.pedantic(run_sfll_contrast, rounds=1,
                                 iterations=1)
    print("\n=== SFLL-HD(0): SAT-attack effort vs protected bits ===")
    print(f"EPIC-7 baseline: {results['epic_dips']} DIPs")
    dips = []
    for bits in (4, 5, 6, 7):
        iterations, gave_up, seconds = results[f"sfll_{bits}"]
        dips.append(iterations)
        print(f"  {bits} protected bits: {iterations} DIPs "
              f"({seconds:.2f}s){' [budget hit]' if gave_up else ''}")
    # paper shape: SFLL effort grows ~2^bits, far above EPIC's.
    assert dips[-1] > dips[0]
    assert dips[-1] > results["epic_dips"]


def run_antisat_scaling():
    from repro.ip import antisat_lock
    base = random_circuit(8, 60, 3, seed=4)
    rows = {}
    for width in (3, 4, 5, 6):
        locked = antisat_lock(base, width=width, seed=4)
        began = time.perf_counter()
        attack = attack_locked_circuit(locked, max_iterations=300)
        rows[width] = (attack.iterations, attack.gave_up,
                       time.perf_counter() - began)
    return rows


def test_antisat_resilience_scaling(benchmark):
    rows = benchmark.pedantic(run_antisat_scaling, rounds=1,
                              iterations=1)
    print("\n=== Anti-SAT: SAT-attack effort vs block width ===")
    dips = []
    for width, (iterations, gave_up, seconds) in rows.items():
        dips.append(iterations)
        print(f"  width {width} ({2 * width} key bits): {iterations} "
              f"DIPs ({seconds:.2f}s)"
              f"{' [budget hit]' if gave_up else ''}")
    # ~2^width: every step at least x1.5
    for a, b in zip(dips, dips[1:]):
        assert b >= 1.5 * a
