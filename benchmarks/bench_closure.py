"""X11 — Sec. III-D: security closure of routed layouts.

Routes benchmark designs through the multi-layer maze router, measures
the three layout attack-surface metrics (probing / FIA / Trojan), and
runs the iterative ECO closure loop.  Paper-shape expectations:

* a PPA-only layout ships with an open attack surface — critical nets
  reachable by probes or lasers, free sites for Trojan logic;
* the closure loop drives every metric under threshold with layout-only
  ECOs (bury / shield / fill): zero functional cells added, SAT CEC
  clean against the pre-closure netlist;
* the router itself stays the dominant cost, so closure is benchmarked
  as route time vs full-loop time.

``--check`` gates both benchmarks: the router's negotiated-congestion
search and the closure loop's re-measure cadence are the two knobs a
future change is most likely to regress.
"""

from repro.crypto import present_sbox_netlist
from repro.netlist import ripple_carry_adder
from repro.physical import (
    annealing_placement,
    default_critical_nets,
    maze_route,
    measure_attack_surface,
    security_closure,
)


def _placed(netlist, seed=2, iterations=3000):
    return annealing_placement(netlist, seed=seed,
                               iterations=iterations).placement


def run_routing(netlist, placement):
    """Route one placed design; return the layout summary."""
    layout = maze_route(netlist, placement)
    metrics = measure_attack_surface(
        layout, placement.positions.values(),
        default_critical_nets(netlist))
    return {
        "nets": len(layout.nets),
        "failed": list(layout.failed),
        "wirelength": layout.total_wirelength,
        "vias": layout.total_vias,
        "initial": metrics.as_dict(),
    }


def run_closure(netlist):
    """Full place -> route -> analyse -> ECO loop on one design."""
    return security_closure(netlist, seed=2)


def test_maze_route_rca16(benchmark):
    design = ripple_carry_adder(16)
    placement = _placed(design)
    study = benchmark.pedantic(run_routing, args=(design, placement),
                               rounds=3, iterations=1)
    print(f"\n=== maze routing: rca16 ===")
    print(f"{study['nets']} nets routed, {len(study['failed'])} failed, "
          f"WL {study['wirelength']}, {study['vias']} vias")
    print(f"open attack surface: {study['initial']}")
    assert study["failed"] == []
    # A PPA-only layout ships open somewhere: at least one metric hot.
    assert max(study["initial"].values()) > 0.05


def test_security_closure_present_sbox(benchmark):
    design = present_sbox_netlist()
    result = benchmark.pedantic(run_closure, args=(design,),
                                rounds=5, iterations=1)
    print(f"\n=== security closure: present_sbox ===")
    print(f"converged in {result.iterations} iteration(s): "
          f"{result.initial_metrics.as_dict()} -> "
          f"{result.metrics.as_dict()}")
    print(f"ECOs: {result.shields_added} shields, "
          f"{result.filler_sites} fillers, "
          f"{len(result.buried_nets)} nets buried; "
          f"CEC {'clean' if result.equivalent else 'MISMATCH'}, "
          f"area overhead {result.area_overhead:.1%}")
    assert result.converged
    assert result.equivalent
    assert result.failed_nets == []
    assert result.area_overhead <= 0.01
