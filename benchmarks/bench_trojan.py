"""X3 — Sec. III-F: MERO statistical Trojan test generation [40].

Sweeps the trigger width and compares MERO N-detect vectors against
random vectors at equal budget, on two metrics: full-Trojan detection
rate and rare-pair trigger coverage.  Paper-shape expectations: both
test sets degrade as triggers get wider (stealthier), and MERO
dominates random at equal budget on coverage.
"""

import pytest

from repro.netlist import random_circuit
from repro.trojan import (
    detection_rate,
    generate_mero_tests,
    pair_trigger_coverage,
    random_test_set,
)


def run_mero_study():
    host = random_circuit(12, 150, 6, seed=8)
    mero = generate_mero_tests(host, n_detect=10, n_initial=300, seed=3)
    budget = len(mero.vectors)
    random_vectors = random_test_set(host, budget, seed=4)
    rows = []
    for width in (2, 3, 4):
        rows.append({
            "width": width,
            "mero": detection_rate(host, mero.vectors, n_trojans=20,
                                   trigger_width=width, seed=100),
            "random": detection_rate(host, random_vectors, n_trojans=20,
                                     trigger_width=width, seed=100),
        })
    coverage = {
        "mero": pair_trigger_coverage(host, mero.vectors, seed=5),
        "random": pair_trigger_coverage(host, random_vectors, seed=5),
    }
    return {
        "budget": budget,
        "quota": mero.quota_fraction,
        "rows": rows,
        "coverage": coverage,
    }


def test_mero_vs_random(benchmark):
    study = benchmark.pedantic(run_mero_study, rounds=1, iterations=1)
    print(f"\n=== MERO vs random at equal budget "
          f"({study['budget']} vectors; quota reached: "
          f"{study['quota']:.0%}) ===")
    print(f"{'trigger width':>13} {'MERO detect':>12} "
          f"{'random detect':>14}")
    for row in study["rows"]:
        print(f"{row['width']:>13} {row['mero']:>12.2f} "
              f"{row['random']:>14.2f}")
    print(f"rare-pair trigger coverage: MERO "
          f"{study['coverage']['mero']:.2f} vs random "
          f"{study['coverage']['random']:.2f}")
    # MERO dominates random on fine-grained coverage.
    assert study["coverage"]["mero"] > study["coverage"]["random"]
    # Wider (stealthier) triggers are harder for everyone.
    rows = study["rows"]
    assert rows[-1]["mero"] <= rows[0]["mero"] + 0.15
    # MERO is never materially worse than random at equal budget.
    for row in rows:
        assert row["mero"] >= row["random"] - 0.10
