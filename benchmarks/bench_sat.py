"""S1 — SAT-core microbenchmarks: the kernels behind ATPG and attacks.

The incremental two-watched-literal CDCL core is the shared bottleneck
of test generation, locking attacks, and equivalence checking (paper
Table II puts all three on the same flow substrate).  Two workloads pin
its performance:

* deterministic stuck-at ATPG on the AES S-box — one base encode, one
  assumption-based cone query per fault, fault dropping between
  queries;
* the oracle-guided SAT attack on an EPIC-locked ripple-carry adder —
  one persistent solver across every DIP iteration and the final key
  extraction.

Both also re-verify their functional results, so a solver regression
that returned wrong answers would fail the benchmark rather than score
it.
"""

from repro.crypto import aes_sbox_netlist
from repro.dft import run_atpg
from repro.ip import attack_locked_circuit, lock_xor, verify_recovered_key
from repro.netlist import ripple_carry_adder


def run_atpg_aes_sbox():
    return run_atpg(aes_sbox_netlist(), random_budget=32, seed=0)


def test_sat_atpg_aes_sbox(benchmark):
    result = benchmark.pedantic(run_atpg_aes_sbox, rounds=4, iterations=1)
    print("\n=== SAT ATPG on aes_sbox ===")
    print(f"vectors={len(result.vectors)} detected={len(result.detected)} "
          f"untestable={len(result.untestable)} "
          f"aborted={len(result.aborted)} coverage={result.coverage:.3f}")
    assert not result.aborted
    assert result.coverage == 1.0


def run_sat_attack_locked_rca():
    locked = lock_xor(ripple_carry_adder(8), key_bits=16, seed=3)
    attack = attack_locked_circuit(locked, max_iterations=500)
    return locked, attack


def test_sat_attack_locked_rca(benchmark):
    locked, attack = benchmark.pedantic(run_sat_attack_locked_rca,
                                        rounds=5, iterations=1)
    stats = attack.solver_stats
    print("\n=== SAT attack on EPIC-locked rca8 (16 key bits) ===")
    print(f"DIPs={attack.iterations} conflicts={stats['conflicts']} "
          f"propagations={stats['propagations']} "
          f"restarts={stats['restarts']}")
    assert attack.success
    assert verify_recovered_key(locked, attack.recovered_key)
