"""X7 — Sec. III-F: scan-chain attack and secure scan [39].

Attacks a population of crypto chips through their scan chains, with
and without the secure-scan mode controller.  Paper-shape expectations:
100% key recovery on plain scan, 0% on secure scan, with DFT access
(testability) preserved in both cases.  Also grades the DFT value the
scan chain exists for: stuck-at coverage via ATPG on the same design.
"""

import random

import pytest

from repro.dft import (
    ScanChipModel,
    insert_scan,
    run_atpg,
    scan_attack,
    test_access_still_works as scan_test_access,
)
from repro.netlist import GateType, Netlist


def run_scan_study():
    rng = random.Random(1)
    keys = [[rng.randrange(256) for _ in range(16)] for _ in range(10)]
    plain_recovered = sum(
        1 for key in keys
        if scan_attack(ScanChipModel(key, secure=False), seed=2).success)
    secure_chips = [ScanChipModel(key, secure=True) for key in keys]
    secure_recovered = sum(
        1 for chip in secure_chips if scan_attack(chip, seed=3).success)
    testable = sum(1 for chip in secure_chips
                   if scan_test_access(chip, seed=4))

    # The DFT payoff the chain is there for: ATPG coverage on a small
    # sequential design's combinational core.
    core = Netlist("core")
    for name in ("a", "b", "c"):
        core.add_input(name)
    core.add_gate("g1", GateType.AND, ["a", "b"])
    core.add_gate("g2", GateType.XOR, ["g1", "c"])
    core.add_gate("g3", GateType.NOR, ["g2", "a"])
    core.add_output("g2")
    core.add_output("g3")
    atpg = run_atpg(core, random_budget=16, seed=5)

    # Scan insertion itself on a sequential wrapper.
    seq = Netlist("wrapped")
    seq.add_input("din")
    seq.add_gate("q0", GateType.DFF, ["d0"])
    seq.add_gate("q1", GateType.DFF, ["d1"])
    seq.add_gate("d0", GateType.XOR, ["din", "q1"])
    seq.add_gate("d1", GateType.AND, ["q0", "din"])
    seq.add_output("q1")
    scan_design = insert_scan(seq)

    return {
        "n_chips": len(keys),
        "plain_recovered": plain_recovered,
        "secure_recovered": secure_recovered,
        "testable": testable,
        "atpg_coverage": atpg.coverage,
        "chain_length": scan_design.length,
    }


def test_scan_attack_vs_secure_scan(benchmark):
    study = benchmark.pedantic(run_scan_study, rounds=1, iterations=1)
    n = study["n_chips"]
    print("\n=== scan attack vs secure scan "
          f"({n}-chip population) ===")
    print(f"plain scan:  keys recovered {study['plain_recovered']}/{n}")
    print(f"secure scan: keys recovered {study['secure_recovered']}/{n}, "
          f"test access preserved on {study['testable']}/{n}")
    print(f"DFT value retained: ATPG stuck-at coverage "
          f"{study['atpg_coverage']:.2f}; inserted scan chain length "
          f"{study['chain_length']}")
    assert study["plain_recovered"] == n
    assert study["secure_recovered"] == 0
    assert study["testable"] == n
    assert study["atpg_coverage"] == 1.0
