#!/usr/bin/env python
"""Benchmark-regression harness.

Runs the pytest-benchmark suite under ``benchmarks/``, stores the
machine-readable results as ``BENCH_<n>.json`` at the repository root
(``n`` auto-increments), and prints a per-benchmark comparison against
the previous run, flagging regressions beyond a configurable threshold.

Usage::

    python benchmarks/run_bench.py                 # whole suite
    python benchmarks/run_bench.py bench_tvla.py   # one file
    python benchmarks/run_bench.py -k tvla         # pytest filters pass through

Exit status is non-zero if pytest fails or any benchmark regressed by
more than ``--threshold`` (default 10%).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")


def existing_runs() -> Dict[int, Path]:
    runs = {}
    for path in REPO_ROOT.iterdir():
        m = BENCH_RE.match(path.name)
        if m:
            runs[int(m.group(1))] = path
    return runs


def load_means(path: Path) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return {
        bench["name"]: bench["stats"]["mean"]
        for bench in data.get("benchmarks", [])
    }


def compare(previous: Dict[str, float], current: Dict[str, float],
            threshold: float) -> int:
    """Print the comparison table; returns the number of regressions."""
    if not previous:
        print("no previous BENCH_*.json to compare against")
        return 0
    width = max((len(n) for n in current), default=4)
    print(f"{'benchmark':<{width}}  {'prev (s)':>10}  {'now (s)':>10}  "
          f"{'speedup':>8}")
    regressions = 0
    for name in sorted(current):
        now = current[name]
        prev = previous.get(name)
        if prev is None:
            print(f"{name:<{width}}  {'-':>10}  {now:>10.4f}  {'new':>8}")
            continue
        speedup = prev / now if now > 0 else float("inf")
        marker = ""
        if now > prev * (1 + threshold):
            marker = f"  << REGRESSION (>{threshold:.0%})"
            regressions += 1
        print(f"{name:<{width}}  {prev:>10.4f}  {now:>10.4f}  "
              f"{speedup:>7.2f}x{marker}")
    for name in sorted(set(previous) - set(current)):
        print(f"{name:<{width}}  {previous[name]:>10.4f}  {'-':>10}  "
              f"{'gone':>8}")
    return regressions


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Unknown arguments are forwarded to pytest.")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="regression threshold as a fraction "
                             "(default: 0.10 = 10%%)")
    parser.add_argument("--compare-only", action="store_true",
                        help="compare the two latest BENCH_*.json "
                             "without running anything")
    args, pytest_args = parser.parse_known_args(argv)

    runs = existing_runs()
    if args.compare_only:
        if len(runs) < 2:
            print("need at least two BENCH_*.json files to compare")
            return 1
        latest, prior = sorted(runs)[-1], sorted(runs)[-2]
        bad = compare(load_means(runs[prior]), load_means(runs[latest]),
                      args.threshold)
        return 1 if bad else 0

    next_n = max(runs, default=0) + 1
    out_path = REPO_ROOT / f"BENCH_{next_n}.json"
    targets = [a for a in pytest_args if not a.startswith("-")]
    flags = [a for a in pytest_args if a.startswith("-")]
    if not targets:
        targets = [str(BENCH_DIR)]
    else:
        # pytest runs from the repo root; resolve bare file names like
        # ``bench_tvla.py`` against the benchmarks directory.
        targets = [
            str(BENCH_DIR / t)
            if not Path(t).exists() and (BENCH_DIR / t).exists() else t
            for t in targets
        ]
    cmd = [
        sys.executable, "-m", "pytest", "-q", *targets, *flags,
        f"--benchmark-json={out_path}",
    ]
    env_path = str(REPO_ROOT / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = env_path + os.pathsep + env.get("PYTHONPATH", "")
    print("running:", " ".join(cmd))
    proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
    if proc.returncode != 0:
        print(f"pytest exited with {proc.returncode}; "
              f"results (if any) in {out_path.name}")
        return proc.returncode

    current = load_means(out_path)
    print(f"\nwrote {out_path.name} ({len(current)} benchmarks)")
    previous_path = runs.get(max(runs)) if runs else None
    bad = compare(load_means(previous_path) if previous_path else {},
                  current, args.threshold)
    if bad:
        print(f"\n{bad} benchmark(s) regressed more than "
              f"{args.threshold:.0%}")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
