#!/usr/bin/env python
"""Benchmark-regression harness.

Runs the pytest-benchmark suite under ``benchmarks/``, stores the
machine-readable results as ``BENCH_<n>.json`` at the repository root
(``n`` auto-increments), and prints a per-benchmark comparison against
the previous run, flagging regressions beyond a configurable threshold.

Usage::

    python benchmarks/run_bench.py                 # whole suite
    python benchmarks/run_bench.py bench_tvla.py   # one file
    python benchmarks/run_bench.py -k tvla         # pytest filters pass through
    python benchmarks/run_bench.py --jobs 4        # fan out per file

With ``--jobs N`` each bench file becomes one ``pytest-bench`` job
fanned through the :mod:`repro.service` scheduler (N worker
processes, crash isolation, run-database visibility); the per-job
benchmark JSONs are merged into the usual single ``BENCH_<n>.json``,
so comparison and ``--check`` gating are unchanged.

Exit status is non-zero if pytest fails or any benchmark regressed by
more than ``--threshold`` (default 10%).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import statistics
import subprocess
import sys
from pathlib import Path
from typing import Dict, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCH_DIR = Path(__file__).resolve().parent
BENCH_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: ``--check`` scope: the flow-level benchmarks whose overhead the
#: pass-manager refactor must bound (fig1 flows, fig2 masking, AES)
#: plus the SAT-core microbenchmarks (ATPG / SAT attack kernels), the
#: physical-design kernels (maze routing / security closure), the
#: batched variant-sweep benchmarks (masking TVLA / locking keys),
#: the execution-service benchmarks (warm-pool resubmission /
#: indexed run-DB queries), and the HTTP gateway under concurrent
#: client load (submission latency / cache-served throughput).
CHECK_FILES = ("bench_fig1.py", "bench_fig2.py", "bench_aes_netlist.py",
               "bench_sat.py", "bench_closure.py", "bench_variants.py",
               "bench_service.py", "bench_gateway.py")
#: ``--check`` baseline: the pre-pass-manager reference run (PR 1).
BASELINE = REPO_ROOT / "BENCH_1.json"


def check_baseline(runs: Dict[int, Path],
                   exclude: Optional[int] = None) -> Dict[str, float]:
    """Per-benchmark ``--check`` baseline (min-stat seconds).

    Starts from :data:`BASELINE`; benchmarks that did not exist then
    (e.g. the SAT-core microbenchmarks added in PR 3) are anchored to
    the earliest committed ``BENCH_*.json`` that records them, so they
    are gated from their introduction run onward.  ``exclude`` drops
    one run number (the run being judged) from consideration.
    """
    baseline = load_means(BASELINE, stat="min") if BASELINE.exists() else {}
    for n in sorted(runs):
        if n == exclude or runs[n] == BASELINE:
            continue
        for name, seconds in load_means(runs[n], stat="min").items():
            baseline.setdefault(name, seconds)
    return baseline


def existing_runs() -> Dict[int, Path]:
    runs = {}
    for path in REPO_ROOT.iterdir():
        m = BENCH_RE.match(path.name)
        if m:
            runs[int(m.group(1))] = path
    return runs


def load_means(path: Path, stat: str = "mean") -> Dict[str, float]:
    """Benchmark name -> ``stat`` seconds from a pytest-benchmark JSON.

    The ``--check`` gate compares ``min`` — the noise-robust statistic
    (load spikes only ever push a round up, never down) — while the
    human-facing run comparison keeps ``mean``.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}
    return {
        bench["name"]: bench["stats"][stat]
        for bench in data.get("benchmarks", [])
    }


def compare(previous: Dict[str, float], current: Dict[str, float],
            threshold: float, normalize: bool = False) -> int:
    """Print the comparison table; returns the number of regressions.

    With ``normalize``, the median now/prev ratio over the shared
    benchmarks is treated as environmental drift (runs recorded on
    different machines or under different load) and each benchmark is
    flagged only if it regresses beyond ``threshold`` *relative to that
    drift* — i.e. what the code change itself cost, not what the
    machine cost.  A benchmark set where everything slowed uniformly
    passes; one benchmark slowing while its peers did not fails.
    """
    if not previous:
        print("no previous BENCH_*.json to compare against")
        return 0
    drift = 1.0
    if normalize:
        ratios = sorted(current[n] / previous[n] for n in current
                        if n in previous and previous[n] > 0)
        if ratios:
            # Benchmarks that improved beyond the threshold are code
            # improvements, not machine speed — environment does not
            # make one benchmark 30x faster.  Excluding them stops a
            # targeted optimisation from dragging the drift estimate
            # down and falsely flagging its untouched peers.
            env = [r for r in ratios if r > 1.0 / (1.0 + threshold)]
            drift = statistics.median(env or ratios)
            print(f"environment drift (median now/prev over "
                  f"{len(env or ratios)} of {len(ratios)} shared "
                  f"benchmarks): {drift:.2f}x — regressions judged "
                  f"relative to it")
    width = max((len(n) for n in current), default=4)
    print(f"{'benchmark':<{width}}  {'prev (s)':>10}  {'now (s)':>10}  "
          f"{'speedup':>8}")
    regressions = 0
    for name in sorted(current):
        now = current[name]
        prev = previous.get(name)
        if prev is None:
            print(f"{name:<{width}}  {'-':>10}  {now:>10.4f}  {'new':>8}")
            continue
        speedup = prev / now if now > 0 else float("inf")
        marker = ""
        if now > prev * drift * (1 + threshold):
            marker = f"  << REGRESSION (>{threshold:.0%})"
            regressions += 1
        print(f"{name:<{width}}  {prev:>10.4f}  {now:>10.4f}  "
              f"{speedup:>7.2f}x{marker}")
    for name in sorted(set(previous) - set(current)):
        print(f"{name:<{width}}  {previous[name]:>10.4f}  {'-':>10}  "
              f"{'gone':>8}")
    return regressions


def check_summary(baseline: Dict[str, float],
                  current: Dict[str, float]) -> None:
    """One-line ``--check`` recap: median speedup vs the baseline."""
    speedups = [baseline[n] / current[n] for n in current
                if n in baseline and current[n] > 0]
    if speedups:
        print(f"median speedup vs earliest baseline over "
              f"{len(speedups)} benchmark(s): "
              f"{statistics.median(speedups):.2f}x")


def expand_targets(targets) -> list:
    """Flatten targets to individual bench files (fan-out units)."""
    files = []
    for target in targets:
        path = Path(target)
        if path.is_dir():
            files.extend(sorted(str(p) for p in path.glob("bench_*.py")))
        else:
            files.append(str(path))
    return files


def run_parallel(targets, flags, out_path: Path, jobs: int,
                 rundb_path: Optional[Path] = None,
                 serialize: bool = False) -> int:
    """Fan one ``pytest-bench`` job per file through the scheduler.

    Jobs are submitted ``cacheable=False`` — wall-clock timings are
    not a pure function of ``(params, seed)``, so serving them from
    the artifact store would defeat the measurement.  Per-job
    benchmark JSONs are merged (``benchmarks`` lists concatenated,
    top-level metadata from the first successful job) into
    ``out_path`` so downstream comparison sees one ordinary run.

    With ``serialize`` (used by ``--check``) each job depends on its
    predecessor, so measurements never overlap: concurrent timing
    runs contend for the same cores and slow short benchmarks
    disproportionately, which the drift-normalized gate cannot tell
    from a real regression.  The jobs still run as isolated worker
    processes with run-database visibility.
    """
    sys.path.insert(0, str(REPO_ROOT / "src"))
    from repro.service import JobSpec, RunDatabase, Scheduler

    files = expand_targets(targets)
    if not files:
        print("no bench files matched")
        return 1
    rundb = RunDatabase(rundb_path) if rundb_path else None
    scheduler = Scheduler(workers=jobs, rundb=rundb)
    prev_id = None
    for target in files:
        prev_id = scheduler.submit(
            JobSpec("pytest-bench",
                    params={"target": target,
                            "flags": list(flags),
                            "cwd": str(REPO_ROOT),
                            "pythonpath": str(REPO_ROOT / "src")},
                    cacheable=False),
            deps=([prev_id] if serialize and prev_id else ()),
            job_id=Path(target).stem)
    finished = scheduler.run()

    merged = None
    failures = 0
    for job_id in sorted(finished):
        job = finished[job_id]
        if job.status != "succeeded" or job.result is None:
            print(f"{job_id}: job {job.status}"
                  + (f" — {job.error.splitlines()[-1]}"
                     if job.error else ""))
            failures += 1
            continue
        doc = job.result.get("doc")
        if job.result.get("returncode") != 0 or not doc:
            print(f"{job_id}: pytest exited with "
                  f"{job.result.get('returncode')}")
            tail = job.result.get("tail", "")
            if tail:
                print("\n".join(tail.splitlines()[-15:]))
            failures += 1
            continue
        n = len(doc.get("benchmarks", []))
        print(f"{job_id}: {n} benchmarks")
        if merged is None:
            merged = doc
        else:
            merged["benchmarks"].extend(doc.get("benchmarks", []))
    if merged is not None:
        out_path.write_text(json.dumps(merged, indent=2))
    if failures:
        print(f"{failures} bench job(s) failed")
        return 1
    return 0


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0],
        epilog="Unknown arguments are forwarded to pytest.")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="regression threshold as a fraction "
                             "(default: 0.10 = 10%%)")
    parser.add_argument("--compare-only", action="store_true",
                        help="compare the two latest BENCH_*.json "
                             "without running anything")
    parser.add_argument("--check", action="store_true",
                        help="pipeline-overhead check: run only "
                             f"{', '.join(CHECK_FILES)} and compare "
                             f"against the {BASELINE.name} baseline")
    parser.add_argument("--jobs", type=int, default=0,
                        help="fan out one job per bench file through "
                             "the repro.service scheduler with this "
                             "many worker processes (0 = plain pytest)")
    parser.add_argument("--rundb", default=None,
                        help="with --jobs: record job outcomes in this "
                             "run-database JSONL")
    args, pytest_args = parser.parse_known_args(argv)

    runs = existing_runs()
    if args.compare_only:
        if args.check:
            if not runs or not BASELINE.exists():
                print(f"--check needs {BASELINE.name} and at least one "
                      "later BENCH_*.json")
                return 1
            latest = sorted(runs)[-1]
            baseline = check_baseline(runs, exclude=latest)
            current = load_means(runs[latest], stat="min")
            # Benchmarks this run introduced have no earlier anchor:
            # keep them in the table (shown as "new") and trim the
            # baseline to the checked scope instead.
            baseline = {n: t for n, t in baseline.items() if n in current}
            bad = compare(baseline, current, args.threshold,
                          normalize=True)
            check_summary(baseline, current)
            return 1 if bad else 0
        if len(runs) < 2:
            print("need at least two BENCH_*.json files to compare")
            return 1
        latest, prior = sorted(runs)[-1], sorted(runs)[-2]
        bad = compare(load_means(runs[prior]), load_means(runs[latest]),
                      args.threshold)
        return 1 if bad else 0

    next_n = max(runs, default=0) + 1
    out_path = REPO_ROOT / f"BENCH_{next_n}.json"
    targets = [a for a in pytest_args if not a.startswith("-")]
    flags = [a for a in pytest_args if a.startswith("-")]
    if not targets:
        targets = ([str(BENCH_DIR / f) for f in CHECK_FILES]
                   if args.check else [str(BENCH_DIR)])
    else:
        # pytest runs from the repo root; resolve bare file names like
        # ``bench_tvla.py`` against the benchmarks directory.
        targets = [
            str(BENCH_DIR / t)
            if not Path(t).exists() and (BENCH_DIR / t).exists() else t
            for t in targets
        ]
    if args.jobs > 0:
        print(f"fanning out through repro.service "
              f"({args.jobs} workers) -> {out_path.name}")
        rc = run_parallel(
            targets, flags, out_path, args.jobs,
            rundb_path=Path(args.rundb) if args.rundb else None,
            serialize=args.check)
        if rc != 0:
            return rc
    else:
        cmd = [
            sys.executable, "-m", "pytest", "-q", *targets, *flags,
            f"--benchmark-json={out_path}",
        ]
        env_path = str(REPO_ROOT / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (env_path + os.pathsep
                             + env.get("PYTHONPATH", ""))
        print("running:", " ".join(cmd))
        proc = subprocess.run(cmd, cwd=REPO_ROOT, env=env)
        if proc.returncode != 0:
            print(f"pytest exited with {proc.returncode}; "
                  f"results (if any) in {out_path.name}")
            return proc.returncode

    current = load_means(out_path)
    print(f"\nwrote {out_path.name} ({len(current)} benchmarks)")
    if args.check:
        baseline = check_baseline(runs)
        current = load_means(out_path, stat="min")
        baseline = {n: t for n, t in baseline.items() if n in current}
        bad = compare(baseline, current, args.threshold, normalize=True)
        check_summary(baseline, current)
    else:
        previous_path = runs.get(max(runs)) if runs else None
        bad = compare(load_means(previous_path) if previous_path else {},
                      current, args.threshold)
    if bad:
        print(f"\n{bad} benchmark(s) regressed more than "
              f"{args.threshold:.0%}")
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
