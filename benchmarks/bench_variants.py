"""X10 — batched multi-variant evaluation vs per-variant serial sweeps.

The two sweeps the batching layer was built for, timed head to head
against their serial formulations (which this file keeps inline, as
executable references):

* a masking-variant TVLA sweep — 65 re-masked variants of the keyed
  S-box, each needing fixed-vs-random leakage traces, scored by one
  :func:`~repro.sca.family_leakage_traces` call instead of one
  simulation campaign per variant;
* a locking key sweep — 64 candidate keys scored against the correct
  key in one :func:`~repro.ip.score_candidate_keys` family evaluation
  instead of one packed simulation per key.

Both assert bit-identical results (traces, TVLA verdicts, corruption
rates) and a >= 5x batched-over-serial speedup.
"""

import random
import time

import numpy as np
import pytest

from repro.crypto import sbox_with_key_netlist
from repro.ip import lock_xor, score_candidate_keys
from repro.netlist import (
    VariantFamily,
    VariantSpec,
    encode_int,
    get_compiled,
    random_stimulus,
)
from repro.netlist.generators import array_multiplier
from repro.sca import family_leakage_traces, leakage_traces, tvla

N_TRACES = 48
N_MASK_VARIANTS = 65      # identity + 64 re-maskings
N_KEYS = 64
N_VECTORS = 48


def run_masking_tvla_sweep():
    target = sbox_with_key_netlist()
    rng = random.Random(11)
    key_nets = [f"k{i}" for i in range(8)]
    stimuli = []
    for t in range(N_TRACES):
        pt = 0x3C if t < N_TRACES // 2 else rng.randrange(256)
        stim = encode_int(pt, [f"p{i}" for i in range(8)])
        stim.update(encode_int(0x5A, key_nets))
        stimuli.append(stim)
    # Variant v re-masks the key by flipping the key-input subset
    # encoded by v — the per-variant delta is pure input planes.
    masks = [0] + [rng.randrange(1, 256) for _ in range(N_MASK_VARIANTS - 1)]
    specs = [
        VariantSpec(flips=[key_nets[b] for b in range(8)
                           if (mask >> b) & 1])
        for mask in masks
    ]
    family = VariantFamily(target, specs)
    # Twice: the first family evaluation is interpreted, the second
    # compiles the program the timed call then reuses.
    family_leakage_traces(family, stimuli[:2], noise_sigma=0.5, seed=7)
    family_leakage_traces(family, stimuli[:2], noise_sigma=0.5, seed=7)

    start = time.perf_counter()
    batched = family_leakage_traces(family, stimuli, noise_sigma=0.5,
                                    seed=7)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    serial = np.empty_like(batched)
    for v, mask in enumerate(masks):
        remasked = [
            {name: value ^ ((mask >> int(name[1:])) & 1
                            if name in key_nets else 0)
             for name, value in stim.items()}
            for stim in stimuli
        ]
        serial[v] = leakage_traces(target, remasked, noise_sigma=0.5,
                                   seed=7 + v)
    serial_s = time.perf_counter() - start

    assert np.array_equal(batched, serial)
    half = N_TRACES // 2
    verdicts_b = [tvla(batched[v][:half], batched[v][half:]).max_abs_t
                  for v in range(N_MASK_VARIANTS)]
    verdicts_s = [tvla(serial[v][:half], serial[v][half:]).max_abs_t
                  for v in range(N_MASK_VARIANTS)]
    assert verdicts_b == verdicts_s
    return {
        "variants": N_MASK_VARIANTS,
        "traces": N_TRACES,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
    }


def serial_key_rates(locked, keys, vectors, seed):
    """One packed simulation per candidate key: the serial reference."""
    rng = random.Random(seed)
    net = locked.netlist
    data_inputs = [i for i in net.inputs if i not in locked.key]
    stimulus = random_stimulus(data_inputs, vectors, rng)
    compiled = get_compiled(net)
    mask = (1 << vectors) - 1
    output_indices = [compiled.index[o] for o in net.outputs]

    def eval_with(key):
        stim = dict(stimulus)
        stim.update({name: (mask if bit else 0)
                     for name, bit in key.items()})
        return compiled.eval_words(stim, vectors)

    golden = eval_with(locked.key)
    denominator = len(net.outputs) * vectors
    rates = []
    for key in keys:
        words = eval_with(key)
        corrupted = sum(((words[o] ^ golden[o]) & mask).bit_count()
                        for o in output_indices)
        rates.append(corrupted / denominator)
    return rates


def run_locking_key_sweep():
    locked = lock_xor(array_multiplier(16), key_bits=24, seed=5)
    rng = random.Random(9)
    keys = [
        {name: rng.randint(0, 1) for name in locked.key}
        for _ in range(N_KEYS)
    ]
    # Warm the lowering caches so both paths time evaluation only
    # (twice on the batched side: interpreted pass, then codegen —
    # the timed sweep reuses the compiled family program).
    score_candidate_keys(locked, keys[:1], vectors=N_VECTORS, seed=2)
    score_candidate_keys(locked, keys[:1], vectors=N_VECTORS, seed=2)
    serial_key_rates(locked, keys[:1], N_VECTORS, 2)

    start = time.perf_counter()
    batched = score_candidate_keys(locked, keys, vectors=N_VECTORS, seed=2)
    batched_s = time.perf_counter() - start

    start = time.perf_counter()
    serial = serial_key_rates(locked, keys, N_VECTORS, 2)
    serial_s = time.perf_counter() - start

    assert batched == serial
    return {
        "keys": N_KEYS,
        "vectors": N_VECTORS,
        "serial_s": serial_s,
        "batched_s": batched_s,
        "speedup": serial_s / batched_s,
    }


def test_masking_variant_tvla_sweep(benchmark):
    result = benchmark.pedantic(run_masking_tvla_sweep, rounds=1,
                                iterations=1)
    print(f"\n=== masking-variant TVLA sweep "
          f"({result['variants']} variants x {result['traces']} traces) ===")
    print(f"serial  : {result['serial_s']:.3f}s")
    print(f"batched : {result['batched_s']:.3f}s "
          f"({result['speedup']:.1f}x, bit-identical traces and verdicts)")
    assert result["speedup"] >= 5.0


def test_locking_key_sweep(benchmark):
    result = benchmark.pedantic(run_locking_key_sweep, rounds=1,
                                iterations=1)
    print(f"\n=== locking key sweep "
          f"({result['keys']} keys x {result['vectors']} vectors) ===")
    print(f"serial  : {result['serial_s']:.3f}s")
    print(f"batched : {result['batched_s']:.3f}s "
          f"({result['speedup']:.1f}x, bit-identical rates)")
    assert result["speedup"] >= 5.0
