"""X4 — Sec. III-C: split manufacturing vs the proximity attack.

Sweeps the split layer and the defenses on a placed design.
Paper-shape expectations:

* a classical PPA-optimized layout leaves strong hints: the via-level
  proximity attack recovers most hidden connections at practical split
  layers;
* wire lifting [53] removes the stub hints and collapses CCR;
* placement perturbation [54] degrades the M1-split cell-proximity
  attacker;
* defense costs appear as extra wirelength (BEOL usage).
"""

import pytest

from repro.ip import (
    build_feol_view,
    lift_critical_nets,
    perturb_placement,
    proximity_attack,
    reconstruction_error_rate,
)
from repro.ip.split import high_fanout_nets
from repro.netlist import ripple_carry_adder
from repro.physical import annealing_placement


def run_split_study():
    design = ripple_carry_adder(8)
    placement = annealing_placement(design, iterations=6000,
                                    seed=2).placement
    by_layer = []
    for layer in (1, 2, 3):
        view = build_feol_view(design, placement, split_layer=layer)
        attack = proximity_attack(view, mode="via")
        by_layer.append({
            "layer": layer,
            "hidden_pins": len(view.open_sinks),
            "ccr": attack.ccr,
            "error": reconstruction_error_rate(view, attack),
        })
    lifted_nets = lift_critical_nets(design,
                                     high_fanout_nets(design, 25))
    lifted_view = build_feol_view(design, placement, split_layer=1,
                                  lifted=lifted_nets)
    lifted_attack = proximity_attack(lifted_view, mode="via")
    perturbed = perturb_placement(placement, amount=6, fraction=0.6,
                                  seed=3)
    m1_plain = proximity_attack(
        build_feol_view(design, placement, split_layer=0), mode="cell")
    m1_perturbed = proximity_attack(
        build_feol_view(design, perturbed, split_layer=0), mode="cell")
    return {
        "by_layer": by_layer,
        "lifted_ccr": lifted_attack.ccr,
        "lifted_pins": len(lifted_view.open_sinks),
        "lifted_error": reconstruction_error_rate(lifted_view,
                                                  lifted_attack),
        "m1_plain_ccr": m1_plain.ccr,
        "m1_perturbed_ccr": m1_perturbed.ccr,
    }


def test_split_manufacturing(benchmark):
    study = benchmark.pedantic(run_split_study, rounds=1, iterations=1)
    print("\n=== split manufacturing: proximity attack vs defenses ===")
    print(f"{'split layer':>11} {'hidden pins':>12} {'CCR':>6} "
          f"{'reconstruction err':>19}")
    for row in study["by_layer"]:
        print(f"{row['layer']:>11} {row['hidden_pins']:>12} "
              f"{row['ccr']:>6.2f} {row['error']:>19.2f}")
    print(f"wire lifting at split=1: CCR {study['lifted_ccr']:.2f} "
          f"over {study['lifted_pins']} pins "
          f"(reconstruction error {study['lifted_error']:.2f})")
    print(f"M1 split, cell-proximity attacker: CCR "
          f"{study['m1_plain_ccr']:.2f} optimized placement -> "
          f"{study['m1_perturbed_ccr']:.2f} after perturbation")
    base = study["by_layer"][0]
    # classical flow leaves exploitable hints
    assert base["ccr"] > 0.6
    # lifting collapses the attack
    assert study["lifted_ccr"] < base["ccr"] - 0.2
    # perturbation degrades the M1 attacker
    assert study["m1_perturbed_ccr"] < study["m1_plain_ccr"]
    # higher split layers hide fewer wires
    pins = [row["hidden_pins"] for row in study["by_layer"]]
    assert pins == sorted(pins, reverse=True)
